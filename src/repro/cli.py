"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    List the registered models, compressors, datasets, callbacks and the
    Table-1 hyperparameters.
``components``
    List every component registry (models, compressors, datasets,
    optimizers, LR schedules, networks, callbacks, sync strategies,
    aggregators, topologies) with one-line descriptions.
``run``
    Train one configuration with the simulated distributed trainer — either
    from flags or from a declarative JSON spec (``--config spec.json``) —
    and print its convergence curve.  ``--sync/--sync-period/--aggregator/
    --topology`` select the synchronization setup (see ``repro components``).
``validate``
    Check an experiment spec file without running it; prints the resolved
    configuration or every problem found.
``sweep``
    Run a Figure-3-style convergence sweep (several algorithms × worker
    counts) and write the results to JSON.
``cost``
    Evaluate the paper-scale cost model: iteration time, total training time
    and scaling efficiency (Figures 4/5, Table 2).
``compare``
    Compare every registered compressor on one synthetic gradient (traffic,
    measured kernel time, compression error).
``bench-pipeline``
    Time the fused gradient pipeline against the seed path.
``bench-backend``
    Time the multiprocessing execution backend against the in-process one
    at several worker-process counts.

Dispatch uses ``set_defaults(handler=...)`` — each subparser binds its
implementation, so adding a command is one ``sub.add_parser`` block with no
if/elif ladder to extend.  Flags shared between training commands live on
parent parsers.  On ``run``, explicit flags override the spec file: the
flag parsers default to ``argparse.SUPPRESS`` so only user-provided values
are merged onto the :class:`~repro.core.spec.ExperimentSpec`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.reporting import format_figure_series, format_table
from repro.backends import EXECUTION_BACKENDS
from repro.analysis.sweeps import DEFAULT_ALGORITHMS, convergence_sweep, cost_sweep
from repro.compress import get_compressor, list_compressors
from repro.core.callbacks import CALLBACKS
from repro.core.cost_model import CostModel
from repro.core.experiment import run_experiment
from repro.core.spec import ExperimentSpec, SpecError
from repro.comm.network_model import NETWORKS
from repro.comm.topology import TOPOLOGIES
from repro.compress.registry import COMPRESSORS
from repro.data.registry import DATASETS
from repro.models.registry import (
    MODELS,
    PAPER_HYPERPARAMETERS,
    PAPER_PARAMETER_COUNTS,
    get_model_spec,
    list_models,
)
from repro.optim.registry import LR_SCHEDULES, OPTIMIZERS
from repro.faults import FAULT_MODELS, FaultSpec
from repro.federated import CLIENT_SAMPLERS, ClientSpec
from repro.data.partition import PARTITION_POLICIES
from repro.registry import public_registries
from repro.sim.compute import COMPUTE_MODELS
from repro.sync import AGGREGATORS, SYNC_STRATEGIES, SyncSpec
from repro.utils.serialization import save_json
from repro.utils.timer import median_time

#: argparse dest -> ExperimentSpec field, for the ``run`` flag/spec merge.
RUN_FLAG_FIELDS: Dict[str, str] = {
    "model": "model",
    "preset": "preset",
    "algorithm": "algorithm",
    "workers": "world_size",
    "epochs": "epochs",
    "iterations": "max_iterations_per_epoch",
    "batch_size": "batch_size",
    "seed": "seed",
    "eval_every": "eval_every",
    "fused_pipeline": "fused_pipeline",
    "taped": "taped",
    "compute_model": "compute_model",
    "seed_clock": "clock_seed",
    "seed_faults": "fault_seed",
    "backend": "backend",
}

#: argparse dest -> SyncSpec field, merged into the spec's ``sync`` section.
SYNC_FLAG_FIELDS: Dict[str, str] = {
    "sync": "strategy",
    "sync_period": "period",
    "aggregator": "aggregator",
    "topology": "topology",
    "param_compression": "parameter_compression",
}

#: argparse dest -> ClientSpec field, merged into the spec's ``clients``
#: section.
CLIENT_FLAG_FIELDS: Dict[str, str] = {
    "num_clients": "num_clients",
    "cohort_size": "cohort_size",
    "client_sampler": "sampler",
    "data_skew": "data_skew",
}

#: Flag-mode baseline for ``repro run`` (historical CLI defaults; the
#: remaining fields use the ExperimentSpec defaults).
CLI_RUN_DEFAULTS: Dict[str, object] = {"max_iterations_per_epoch": 12, "batch_size": 16}

#: Every component registry, as shown by ``repro components`` — the live
#: label → Registry mapping populated by ``Registry(..., expose=...)``.  The
#: imports above pull in every registry-defining module, so the mapping is
#: complete by the time this module is loaded; a newly-exposed registry
#: appears here with no table to update.
COMPONENT_REGISTRIES = public_registries()


def _registry_name(registry):
    """argparse ``type=`` that canonicalizes a registry name (aliases OK)."""
    def parse(value: str) -> str:
        try:
            return registry.canonical(value)
        except KeyError as error:
            raise argparse.ArgumentTypeError(str(error)) from None
    parse.__name__ = registry.kind.replace(" ", "_")    # shown in error text
    return parse


def _fault_model_name(value: str) -> str:
    """argparse ``type=`` for ``--fault-model``: "none" or a fault model."""
    if value.strip().lower() in ("none", "off"):
        return "none"
    try:
        return FAULT_MODELS.canonical(value)
    except KeyError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _param_compression_name(value: str) -> str:
    """argparse ``type=`` for ``--param-compression``: "none" or a compressor."""
    if value.strip().lower() in ("none", "off"):
        return "none"
    try:
        return COMPRESSORS.canonical(value)
    except KeyError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro",
                                     description="A2SGD reproduction command-line interface")
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared parent parsers (add_help=False so they compose into subparsers).
    output_parent = argparse.ArgumentParser(add_help=False)
    output_parent.add_argument("--output", default=None, help="optional JSON output path")

    train_parent = argparse.ArgumentParser(add_help=False)
    train_parent.add_argument("--model", default=argparse.SUPPRESS, choices=list_models())
    train_parent.add_argument("--preset", default=argparse.SUPPRESS,
                              choices=["tiny", "paper"],
                              help="model size preset (default: tiny)")
    train_parent.add_argument("--algorithm", default=argparse.SUPPRESS,
                              choices=list_compressors())
    train_parent.add_argument("--workers", type=int, default=argparse.SUPPRESS)
    train_parent.add_argument("--epochs", type=int, default=argparse.SUPPRESS)
    train_parent.add_argument("--iterations", type=int, default=argparse.SUPPRESS,
                              help="iterations per epoch")
    train_parent.add_argument("--batch-size", type=int, default=argparse.SUPPRESS)
    train_parent.add_argument("--seed", type=int, default=argparse.SUPPRESS)
    train_parent.add_argument("--eval-every", type=int, default=argparse.SUPPRESS,
                              help="evaluate every k epochs (always on the last)")
    train_parent.add_argument("--fused", dest="fused_pipeline",
                              action=argparse.BooleanOptionalAction,
                              default=argparse.SUPPRESS,
                              help="use the zero-copy fused pipeline (--no-fused for "
                                   "the seed per-rank loops)")
    train_parent.add_argument("--taped", dest="taped",
                              action=argparse.BooleanOptionalAction,
                              default=argparse.SUPPRESS,
                              help="record the batched graph once and replay it every "
                                   "iteration (--no-taped for the eager batched path)")
    # type=, not choices=: registry lookups accept aliases and case/
    # punctuation variants ("localsgd", "Top-K"), exactly like spec files,
    # and the canonical name lands in the namespace.
    train_parent.add_argument("--sync", default=argparse.SUPPRESS,
                              type=_registry_name(SYNC_STRATEGIES),
                              metavar=f"{{{','.join(SYNC_STRATEGIES.list())}}}",
                              help="synchronization strategy (default: allreduce)")
    train_parent.add_argument("--sync-period", type=int, default=argparse.SUPPRESS,
                              metavar="H",
                              help="local_sgd: aggregate parameters every H iterations")
    train_parent.add_argument("--aggregator", default=argparse.SUPPRESS,
                              type=_registry_name(AGGREGATORS),
                              metavar=f"{{{','.join(AGGREGATORS.list())}}}",
                              help="how per-rank payloads combine (default: mean)")
    train_parent.add_argument("--topology", default=argparse.SUPPRESS,
                              type=_registry_name(TOPOLOGIES),
                              metavar=f"{{{','.join(TOPOLOGIES.list())}}}",
                              help="gossip communication graph (default: ring)")
    train_parent.add_argument("--param-compression", dest="param_compression",
                              default=argparse.SUPPRESS,
                              type=_param_compression_name,
                              metavar=f"{{none,{','.join(COMPRESSORS.list())}}}",
                              help="compress the parameter-phase payloads of "
                                   "local_sgd/gossip as deltas against the last "
                                   "synchronized reference (default: none)")
    train_parent.add_argument("--compute-model", dest="compute_model",
                              default=argparse.SUPPRESS,
                              type=_registry_name(COMPUTE_MODELS),
                              metavar=f"{{{','.join(COMPUTE_MODELS.list())}}}",
                              help="per-rank compute-time model for the simulated "
                                   "clock (async strategies default to constant; "
                                   "with a sync strategy this attaches the "
                                   "lockstep time simulator)")
    train_parent.add_argument("--seed-clock", dest="seed_clock", type=int,
                              default=argparse.SUPPRESS, metavar="SEED",
                              help="seed for the compute-time draws (independent "
                                   "of --seed; identical seeds reproduce event "
                                   "timelines exactly)")
    train_parent.add_argument("--fault-model", dest="fault_model",
                              default=argparse.SUPPRESS,
                              type=_fault_model_name,
                              metavar=f"{{none,{','.join(FAULT_MODELS.list())}}}",
                              help="inject faults from a registered schedule "
                                   "(default: none — bit-identical to the "
                                   "fault-free paths); parameters go in the "
                                   "spec's \"faults\" section")
    train_parent.add_argument("--seed-faults", dest="seed_faults", type=int,
                              default=argparse.SUPPRESS, metavar="SEED",
                              help="seed for the fault timeline (independent of "
                                   "--seed/--seed-clock; identical seeds "
                                   "reproduce outages and message loss exactly)")
    train_parent.add_argument("--backend", default=argparse.SUPPRESS,
                              type=_registry_name(EXECUTION_BACKENDS),
                              metavar=f"{{{','.join(EXECUTION_BACKENDS.list())}}}",
                              help="execution backend (default: inprocess; "
                                   "multiprocessing runs rank shards as worker "
                                   "processes over shared memory, bit-identical)")
    train_parent.add_argument("--backend-workers", dest="backend_workers",
                              type=int, default=argparse.SUPPRESS, metavar="K",
                              help="multiprocessing backend: number of worker "
                                   "processes (contiguous rank shards; default: "
                                   "one per rank)")
    train_parent.add_argument("--num-clients", dest="num_clients", type=int,
                              default=argparse.SUPPRESS, metavar="N",
                              help="federated: logical client population size "
                                   "(enables the clients layer; requires "
                                   "--sync fedavg)")
    train_parent.add_argument("--cohort-size", dest="cohort_size", type=int,
                              default=argparse.SUPPRESS, metavar="K",
                              help="federated: clients materialized per round "
                                   "(must equal --workers; default: the world "
                                   "size)")
    train_parent.add_argument("--client-sampler", dest="client_sampler",
                              default=argparse.SUPPRESS,
                              type=_registry_name(CLIENT_SAMPLERS),
                              metavar=f"{{{','.join(CLIENT_SAMPLERS.list())}}}",
                              help="federated: per-round cohort sampler "
                                   "(default: uniform_without_replacement)")
    train_parent.add_argument("--data-skew", dest="data_skew",
                              default=argparse.SUPPRESS,
                              choices=list(PARTITION_POLICIES),
                              help="federated: per-client partition policy "
                                   "(default: iid; dirichlet parameters go in "
                                   "the spec's \"clients\" section)")

    info = sub.add_parser("info",
                          help="list models, compressors, datasets, callbacks and "
                               "paper hyperparameters")
    info.set_defaults(handler=lambda args: cmd_info())

    components = sub.add_parser("components",
                                help="list every component registry "
                                     "(strategies, aggregators, topologies, ...)")
    components.add_argument("--registry", default=None,
                            choices=sorted(COMPONENT_REGISTRIES),
                            help="show one registry instead of all of them")
    components.set_defaults(handler=cmd_components)

    run = sub.add_parser("run", parents=[train_parent, output_parent],
                         help="train one configuration with the simulated trainer")
    run.add_argument("--config", default=None, metavar="SPEC.json",
                     help="experiment spec file; explicit flags override its fields")
    run.add_argument("--callback", action="append", default=None, metavar="NAME",
                     help=f"add a registered callback (repeatable); "
                          f"one of {CALLBACKS.list()}")
    run.add_argument("--metrics-csv", dest="metrics_csv", default=None,
                     metavar="PATH",
                     help="write the per-epoch metrics (loss, metric, simulated "
                          "time, rejected pushes, mean staleness, client "
                          "participation) as CSV")
    run.set_defaults(handler=cmd_run)

    validate = sub.add_parser("validate",
                              help="check an experiment spec file without running it")
    validate.add_argument("config", metavar="SPEC.json", help="experiment spec file")
    validate.set_defaults(handler=cmd_validate)

    sweep = sub.add_parser("sweep", parents=[output_parent],
                           help="Figure-3-style convergence sweep")
    sweep.add_argument("--model", default="fnn3", choices=list_models())
    sweep.add_argument("--workers", type=int, nargs="+", default=[2, 4, 8])
    sweep.add_argument("--algorithms", nargs="+", default=list(DEFAULT_ALGORITHMS))
    sweep.add_argument("--epochs", type=int, default=3)
    sweep.set_defaults(handler=cmd_sweep)

    cost = sub.add_parser("cost", parents=[output_parent],
                          help="paper-scale cost model (Figures 4/5, Table 2)")
    cost.add_argument("--models", nargs="+", default=["fnn3", "vgg16", "resnet20", "lstm_ptb"])
    cost.add_argument("--algorithms", nargs="+", default=list(DEFAULT_ALGORITHMS))
    cost.add_argument("--workers", type=int, nargs="+", default=[2, 4, 8, 16])
    cost.set_defaults(handler=cmd_cost)

    compare = sub.add_parser("compare", help="compare compressors on one gradient")
    compare.add_argument("--size", type=int, default=1_000_000)
    compare.add_argument("--seed", type=int, default=0)
    compare.set_defaults(handler=cmd_compare)

    bench = sub.add_parser("bench-pipeline",
                           help="time the fused gradient pipeline against the seed path")
    bench.add_argument("--model", default="fnn3", choices=list_models())
    bench.add_argument("--algorithm", default="a2sgd", choices=list_compressors())
    bench.add_argument("--workers", type=int, default=8)
    bench.add_argument("--iterations", type=int, default=60)
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument("--taped", dest="taped", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="also time the taped record/replay executor "
                            "(--no-taped to benchmark only seed vs fused)")
    # Synchronization setup for the benchmarked workload (None fields are
    # dropped, so the default stays the paper's allreduce + mean).
    bench.add_argument("--sync", default=None,
                       type=_registry_name(SYNC_STRATEGIES),
                       metavar=f"{{{','.join(SYNC_STRATEGIES.list())}}}",
                       help="synchronization strategy to benchmark")
    bench.add_argument("--sync-period", type=int, default=None, metavar="H",
                       help="local_sgd: aggregate parameters every H iterations")
    bench.add_argument("--topology", default=None,
                       type=_registry_name(TOPOLOGIES),
                       metavar=f"{{{','.join(TOPOLOGIES.list())}}}",
                       help="gossip communication graph")
    bench.add_argument("--param-compression", dest="param_compression",
                       default=None, type=_param_compression_name,
                       metavar=f"{{none,{','.join(COMPRESSORS.list())}}}",
                       help="parameter-phase delta compressor for local_sgd/gossip")
    bench.add_argument("--output", default="BENCH_pipeline.json",
                       help="JSON file the run is appended to")
    bench.set_defaults(handler=cmd_bench_pipeline)

    bench_backend = sub.add_parser(
        "bench-backend",
        help="time the multiprocessing backend against inprocess")
    bench_backend.add_argument("--model", default="resnet20", choices=list_models())
    bench_backend.add_argument("--algorithm", default="a2sgd",
                               choices=list_compressors())
    bench_backend.add_argument("--workers", type=int, default=4,
                               help="world size P (ranks)")
    bench_backend.add_argument("--backend-workers", dest="backend_workers",
                               type=int, nargs="+", default=[1, 2, 4],
                               metavar="K",
                               help="multiprocessing worker-process counts to "
                                    "benchmark (default: 1 2 4)")
    bench_backend.add_argument("--iterations", type=int, default=20)
    bench_backend.add_argument("--repeats", type=int, default=3)
    bench_backend.add_argument("--taped", dest="taped",
                               action=argparse.BooleanOptionalAction, default=True,
                               help="benchmark the taped executors "
                                    "(--no-taped for eager batched)")
    bench_backend.add_argument("--output", default="BENCH_backend.json",
                               help="JSON file the run is appended to")
    bench_backend.set_defaults(handler=cmd_bench_backend)

    return parser


# ---------------------------------------------------------------------- #
# command implementations (each returns the text it printed, for testing,
# or an int exit code)
# ---------------------------------------------------------------------- #
def cmd_info() -> str:
    rows = []
    for name in list_models():
        hp = PAPER_HYPERPARAMETERS[name]
        rows.append([name, f"{PAPER_PARAMETER_COUNTS[name]:,}", hp["dataset"],
                     hp["batch_size"], hp["base_lr"], hp["lr_policy"], hp["epochs"]])
    models_table = format_table(
        ["model", "#params (paper)", "dataset", "batch", "base LR", "LR policy", "epochs"],
        rows, title="Models (Table 1)")
    compressors_table = format_table(
        ["compressor", "exchange", "bits @ 1M params", "complexity"],
        [[name, get_compressor(name).exchange.value,
          f"{get_compressor(name).wire_bits(1_000_000):,.0f}",
          get_compressor(name).computation_complexity(1_000_000)]
         for name in list_compressors()],
        title="Gradient compressors")
    datasets_table = format_table(
        ["dataset", "description"],
        [[name, description] for name, description in DATASETS.describe().items()],
        title="Datasets")
    callbacks_table = format_table(
        ["callback", "description"],
        [[name, description] for name, description in CALLBACKS.describe().items()],
        title="Trainer callbacks (usable via spec \"callbacks\" or --callback)")
    text = "\n\n".join([models_table, compressors_table, datasets_table, callbacks_table])
    print(text)
    return text


def cmd_components(args: argparse.Namespace) -> str:
    """Render every component registry (or one, with ``--registry``)."""
    selected = ([args.registry] if args.registry else sorted(COMPONENT_REGISTRIES))
    sections = []
    for name in selected:
        registry = COMPONENT_REGISTRIES[name]
        rows = [[entry, description]
                for entry, description in registry.describe().items()]
        sections.append(format_table([registry.kind, "description"], rows,
                                     title=f"{name} ({len(rows)} registered)"))
    text = "\n\n".join(sections)
    print(text)
    return text


def _spec_from_run_args(args: argparse.Namespace) -> ExperimentSpec:
    """Merge ``run`` flags over the spec file (or the flag-mode defaults).

    The sync flags merge *into* the spec's ``sync`` section rather than
    replacing it, so ``--aggregator geometric_median`` composes with a
    config file that already selects a strategy.
    """
    if args.config:
        spec = ExperimentSpec.from_file(args.config)
    else:
        spec = ExperimentSpec(**CLI_RUN_DEFAULTS)
    overrides = {field: getattr(args, dest)
                 for dest, field in RUN_FLAG_FIELDS.items() if hasattr(args, dest)}
    sync_overrides = {field: getattr(args, dest)
                      for dest, field in SYNC_FLAG_FIELDS.items() if hasattr(args, dest)}
    if sync_overrides:
        try:
            # merged_with owns the switch-and-reset policy (dropping a
            # switched-away strategy's period/topology and a switched-away
            # aggregator's kwargs) so every merge entry point shares it.
            overrides["sync"] = SyncSpec.resolve(spec.sync).merged_with(sync_overrides)
        except ValueError as error:
            raise SpecError(str(error).splitlines()) from None
    if hasattr(args, "fault_model"):
        try:
            # Same policy as sync: the flag merges into the spec's faults
            # section (model_kwargs reset when the model actually switches).
            overrides["faults"] = FaultSpec.resolve(spec.faults).merged_with(
                {"model": args.fault_model})
        except ValueError as error:
            raise SpecError(str(error).splitlines()) from None
    client_overrides = {field: getattr(args, dest)
                        for dest, field in CLIENT_FLAG_FIELDS.items()
                        if hasattr(args, dest)}
    if client_overrides:
        try:
            # merged_with resets data_skew_kwargs when --data-skew actually
            # switches policy (a dirichlet alpha means nothing to shards).
            overrides["clients"] = ClientSpec.resolve(spec.clients).merged_with(
                client_overrides)
        except ValueError as error:
            raise SpecError(str(error).splitlines()) from None
    # Same switch-and-reset policy as sync: --backend switching away from
    # the spec's backend drops that backend's kwargs (they were written for
    # it), while --backend-workers merges into whatever kwargs remain.
    base_kwargs = dict(spec.backend_kwargs)
    if overrides.get("backend", spec.backend) != spec.backend:
        base_kwargs = {}
        overrides["backend_kwargs"] = base_kwargs
    if hasattr(args, "backend_workers"):
        overrides["backend_kwargs"] = {**base_kwargs,
                                       "num_workers": args.backend_workers}
    if args.callback:
        overrides["callbacks"] = [*spec.callbacks, *args.callback]
    return spec.replace(**overrides) if overrides else spec


def cmd_run(args: argparse.Namespace):
    try:
        spec = _spec_from_run_args(args).validate()
    except SpecError as error:
        print(error, file=sys.stderr)
        return 1
    result = run_experiment(spec)
    rows = [[epoch, f"{loss:.4f}", f"{metric:.2f}"]
            for epoch, loss, metric in zip(result.metrics.epochs, result.metrics.train_loss,
                                           result.metrics.metric)]
    sync = spec.resolved_sync()
    sync_note = "" if sync == SyncSpec() else f" [{sync.describe()}]"
    text = format_table(
        ["epoch", "train loss", result.metric_name],
        rows,
        # "peak": the busiest rank's traffic — for gossip the max-degree rank
        # (the same critical path the α–β model prices); identical across
        # ranks for the symmetric strategies.
        title=(f"{spec.model} / {spec.algorithm} / {spec.world_size} workers — "
               f"{result.wire_bits_per_iteration:,.0f} peak bits/worker/iteration, "
               f"{result.wall_time_s:.1f}s wall time{sync_note}"))
    if result.clients is not None:
        clients = result.clients
        text += (f"\nclients: {clients['num_clients']} total, cohort "
                 f"{clients['cohort_size']} "
                 f"({100 * clients['cohort_fraction']:.0f}%), "
                 f"{clients['rounds']} round(s), "
                 f"unique clients seen {clients['unique_clients_seen']}")
    if result.sim is not None:
        sim = result.sim
        line = (f"simulated time: {sim['simulated_time_s']:.4f}s "
                f"({sim['strategy']} on {sim['compute_model'].get('name', '?')} "
                f"compute model, clock seed {sim['clock_seed']})")
        if sim.get("rejected_pushes"):
            line += f"; rejected pushes: {sim['rejected_pushes']}"
        text = f"{text}\n{line}"
        fault = sim.get("fault")
        if fault:
            fault_line = (f"faults ({fault['model']}, seed {fault['seed']}): "
                          f"downtime {fault['total_downtime_s']:.4f}s over "
                          f"{sum(fault['down_transitions_per_rank'])} outage(s), "
                          f"{sum(fault['rejoins_per_rank'])} rejoin(s), "
                          f"{fault['dropped_messages']} dropped message(s), "
                          f"{fault['retries']} retrie(s), "
                          f"re-sync {fault['resync_bytes']:,.0f} B over "
                          f"{fault['resyncs']} catch-up(s)")
            text = f"{text}\n{fault_line}"
    print(text)
    if args.output:
        path = save_json(result.as_dict(), args.output)
        print(f"results written to {path}")
    if getattr(args, "metrics_csv", None):
        path = result.metrics.to_csv(args.metrics_csv)
        print(f"metrics written to {path}")
    return text


def cmd_validate(args: argparse.Namespace) -> int:
    try:
        spec = ExperimentSpec.from_file(args.config).validate()
    except SpecError as error:
        print(f"{args.config}: INVALID", file=sys.stderr)
        print(error, file=sys.stderr)
        return 1
    print(f"{args.config}: OK")
    print(spec.describe())
    derived = spec.to_trainer_config()
    print(f"derived TrainerConfig: model={derived.model!r} preset={derived.preset!r} "
          f"algorithm={derived.algorithm!r} world_size={derived.world_size} "
          f"epochs={derived.epochs} fused_pipeline={derived.fused_pipeline} "
          f"taped={derived.taped}")
    sync = spec.resolved_sync()
    print(f"sync: {sync.describe()}")
    for note in sync.notes():
        print(f"note: {note}")
    faults = spec.resolved_faults()
    print(f"faults: {faults.describe()}")
    clients = spec.resolved_clients()
    print(f"clients: {clients.describe()}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> str:
    results = convergence_sweep(args.model, algorithms=args.algorithms,
                                world_sizes=args.workers, epochs=args.epochs)
    sections: List[str] = []
    for world_size, row in results.items():
        series = {name: data["metric"] for name, data in row.items()}
        epochs = next(iter(row.values()))["epochs"]
        metric_name = next(iter(row.values()))["metric_name"]
        sections.append(format_figure_series(
            series, epochs, x_label="epoch",
            title=f"{args.model}, {world_size} workers — {metric_name} per epoch"))
    text = "\n\n".join(sections)
    print(text)
    if args.output:
        path = save_json(results, args.output)
        print(f"results written to {path}")
    return text


def cmd_cost(args: argparse.Namespace) -> str:
    sweep = cost_sweep(models=args.models, algorithms=args.algorithms,
                       world_sizes=args.workers, cost_model=CostModel())
    sections: List[str] = []
    for model, entry in sweep.items():
        series = {name: [round(v * 1e3, 2) for v in data["iteration_s"]]
                  for name, data in entry["algorithms"].items()}
        sections.append(format_figure_series(series, entry["world_sizes"], x_label="workers",
                                             title=f"{model} — ms per iteration (Figure 4)"))
        efficiency_rows = [[name, f"{data['scaling_efficiency_at_8']:.2f}",
                            f"{data['communication_bits']:,.0f}"]
                           for name, data in entry["algorithms"].items()]
        sections.append(format_table(["algorithm", "scaling efficiency @8", "bits/worker/iter"],
                                     efficiency_rows, title=f"{model} — Table 2 quantities"))
    text = "\n\n".join(sections)
    print(text)
    if args.output:
        path = save_json(sweep, args.output)
        print(f"results written to {path}")
    return text


def cmd_compare(args: argparse.Namespace) -> str:
    gradient = (np.random.default_rng(args.seed).standard_normal(args.size) * 0.01
                ).astype(np.float32)
    rows = []
    for name in list_compressors():
        compressor = get_compressor(name)
        seconds = median_time(lambda c=compressor: c.compress(gradient.copy()), repeats=3)
        fresh = get_compressor(name)
        fresh.compress(gradient.copy())
        rows.append([name, compressor.exchange.value,
                     f"{compressor.wire_bits(args.size):,.0f}",
                     f"{seconds * 1e3:.2f}",
                     f"{fresh.stats.last_compression_error:.3f}"])
    text = format_table(
        ["compressor", "exchange", "bits/worker", "compress (ms)", "single-shot error"],
        rows, title=f"Compressor comparison on an n={args.size:,} gradient")
    print(text)
    return text


def cmd_bench_pipeline(args: argparse.Namespace) -> str:
    from repro.analysis.perf_pipeline import (
        format_benchmark,
        run_pipeline_benchmark,
        write_benchmark_json,
    )

    sync_fields = {"strategy": args.sync, "period": args.sync_period,
                   "topology": args.topology,
                   "parameter_compression": args.param_compression}
    sync = {key: value for key, value in sync_fields.items() if value is not None}
    if sync:
        # Same gate as run/validate: a benchmark row must describe a setup
        # that was actually exercised, not silently-ignored flags.
        try:
            SyncSpec.from_dict(sync).validate(world_size=args.workers,
                                              algorithm=args.algorithm)
        except ValueError as error:
            print(error, file=sys.stderr)
            return 1
    result = run_pipeline_benchmark(model=args.model, algorithm=args.algorithm,
                                    world_size=args.workers,
                                    iterations=args.iterations, repeats=args.repeats,
                                    sync=sync or None, taped=args.taped)
    text = format_benchmark(result)
    print(text)
    if args.output:
        path = write_benchmark_json(result, args.output)
        print(f"appended run to {path}")
    return text


def cmd_bench_backend(args: argparse.Namespace) -> str:
    from repro.analysis.perf_backend import (
        format_benchmark,
        run_backend_benchmark,
        write_benchmark_json,
    )

    result = run_backend_benchmark(model=args.model, algorithm=args.algorithm,
                                   world_size=args.workers,
                                   workers=args.backend_workers,
                                   iterations=args.iterations,
                                   repeats=args.repeats, taped=args.taped)
    text = format_benchmark(result)
    print(text)
    if args.output:
        path = write_benchmark_json(result, args.output)
        print(f"appended run to {path}")
    return text


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    outcome = args.handler(args)
    return outcome if isinstance(outcome, int) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
