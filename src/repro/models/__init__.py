"""The four evaluation models used in the paper: FNN-3, VGG-16, ResNet-20, LSTM-PTB."""

from repro.models.fnn import FNN3
from repro.models.vgg import VGG16
from repro.models.resnet import ResNet, ResNet20
from repro.models.lstm_lm import LSTMLanguageModel
from repro.models.registry import (
    MODEL_REGISTRY,
    ModelSpec,
    PAPER_PARAMETER_COUNTS,
    build_model,
    get_model_spec,
    list_models,
)

__all__ = [
    "FNN3",
    "VGG16",
    "ResNet",
    "ResNet20",
    "LSTMLanguageModel",
    "ModelSpec",
    "MODEL_REGISTRY",
    "PAPER_PARAMETER_COUNTS",
    "build_model",
    "get_model_spec",
    "list_models",
]
