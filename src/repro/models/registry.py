"""Model registry mapping Table 1 of the paper to constructible models.

Two presets exist for every model:

* ``"paper"`` — the architecture at the size reported in Table 1.  These are
  used by the analytic cost model (parameter counts, communication volume)
  and can be constructed when needed, but training them in NumPy is slow.
* ``"tiny"`` — the same architecture scaled down so the full distributed
  training loop runs in seconds; used by the convergence experiments, tests
  and examples.

``PAPER_PARAMETER_COUNTS`` records the exact parameter counts from Table 1 so
the communication/timing figures use the paper's ``n`` even when a scaled
model instance is being trained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro import nn
from repro.models.fnn import FNN3
from repro.models.lstm_lm import LSTMLanguageModel
from repro.models.resnet import ResNet, ResNet20
from repro.models.vgg import VGG16
from repro.registry import Registry, RegistryKeyError

#: Exact parameter counts from Table 1 of the paper.
PAPER_PARAMETER_COUNTS: Dict[str, int] = {
    "fnn3": 199_210,
    "vgg16": 14_728_266,
    "resnet20": 269_722,
    "lstm_ptb": 66_034_000,
}

#: Batch size and learning-rate policy from Table 1.
PAPER_HYPERPARAMETERS: Dict[str, Dict[str, object]] = {
    "fnn3": {"dataset": "mnist", "batch_size": 128, "base_lr": 0.01,
             "lr_policy": "LS(1 x) + GW + PD", "epochs": 30, "metric": "top1"},
    "vgg16": {"dataset": "cifar10", "batch_size": 128, "base_lr": 0.1,
              "lr_policy": "LS(1.5 x) + GW + PD + LARS", "epochs": 150, "metric": "top1"},
    "resnet20": {"dataset": "cifar10", "batch_size": 128, "base_lr": 0.1,
                 "lr_policy": "LS(1 x) + GW + PD", "epochs": 150, "metric": "top1"},
    "lstm_ptb": {"dataset": "ptb", "batch_size": 128, "base_lr": 22.0,
                 "lr_policy": "PD", "epochs": 100, "metric": "perplexity"},
}


@dataclass(frozen=True)
class ModelSpec:
    """Everything needed to build a model instance and its data pipeline."""

    name: str
    preset: str
    builder: Callable[..., nn.Module]
    builder_kwargs: Dict[str, object]
    dataset: str
    input_shape: Tuple[int, ...]
    num_classes: int
    task: str                      # "classification" or "language_model"
    batch_size: int
    base_lr: float
    lr_policy: str
    epochs: int
    metric: str

    def build(self, seed: int = 0) -> nn.Module:
        """Construct the model with the given initialization seed."""
        return self.builder(seed=seed, **self.builder_kwargs)


def _spec(name: str, preset: str, builder, builder_kwargs, input_shape, num_classes, task,
          dataset: Optional[str] = None) -> ModelSpec:
    hp = PAPER_HYPERPARAMETERS[name]
    return ModelSpec(
        name=name,
        preset=preset,
        builder=builder,
        builder_kwargs=builder_kwargs,
        dataset=dataset or str(hp["dataset"]),
        input_shape=input_shape,
        num_classes=num_classes,
        task=task,
        batch_size=int(hp["batch_size"]),
        base_lr=float(hp["base_lr"]),
        lr_policy=str(hp["lr_policy"]),
        epochs=int(hp["epochs"]),
        metric=str(hp["metric"]),
    )


MODEL_REGISTRY: Dict[Tuple[str, str], ModelSpec] = {
    # ------------------------------------------------------------------ #
    # paper-size presets (Table 1)
    # ------------------------------------------------------------------ #
    ("fnn3", "paper"): _spec(
        "fnn3", "paper", FNN3,
        {"input_dim": 784, "hidden_dims": (174, 174, 174), "num_classes": 10},
        (1, 28, 28), 10, "classification"),
    ("resnet20", "paper"): _spec(
        "resnet20", "paper", ResNet20,
        {"num_classes": 10, "in_channels": 3},
        (3, 32, 32), 10, "classification"),
    ("vgg16", "paper"): _spec(
        "vgg16", "paper", VGG16,
        {"num_classes": 10, "in_channels": 3, "width_multiplier": 1.0, "image_size": 32},
        (3, 32, 32), 10, "classification"),
    ("lstm_ptb", "paper"): _spec(
        "lstm_ptb", "paper", LSTMLanguageModel,
        {"vocab_size": 10000, "embedding_dim": 1500, "hidden_size": 1500, "num_layers": 2},
        (35,), 10000, "language_model"),
    # ------------------------------------------------------------------ #
    # tiny presets — same architectures, small enough to train in CI
    # ------------------------------------------------------------------ #
    ("fnn3", "tiny"): _spec(
        "fnn3", "tiny", FNN3,
        {"input_dim": 64, "hidden_dims": (32, 32, 32), "num_classes": 10},
        (1, 8, 8), 10, "classification", dataset="mnist_tiny"),
    ("resnet20", "tiny"): _spec(
        "resnet20", "tiny", ResNet,
        {"blocks_per_stage": 1, "base_channels": (4, 8, 16), "num_classes": 10,
         "in_channels": 3},
        (3, 8, 8), 10, "classification", dataset="cifar10_tiny"),
    ("vgg16", "tiny"): _spec(
        "vgg16", "tiny", VGG16,
        {"num_classes": 10, "in_channels": 3, "width_multiplier": 0.0625, "image_size": 32},
        (3, 32, 32), 10, "classification", dataset="cifar10_tiny32"),
    ("lstm_ptb", "tiny"): _spec(
        "lstm_ptb", "tiny", LSTMLanguageModel,
        {"vocab_size": 200, "embedding_dim": 32, "hidden_size": 32, "num_layers": 1},
        (12,), 200, "language_model", dataset="ptb_tiny"),
}


# Unified-registry view: every (name, preset) pair is registered under the
# composite key "name/preset" so lookups share the framework's normalization
# and did-you-mean errors.  ``MODEL_REGISTRY`` (the tuple-keyed dict above)
# remains the authoritative store for code that iterates presets.
MODELS = Registry("model", expose="models")
for (_name, _preset), _model_spec in MODEL_REGISTRY.items():
    MODELS.register(f"{_name}/{_preset}", _model_spec,
                    description=f"{_name} ({_preset} preset) on {_model_spec.dataset}")


def list_models() -> list[str]:
    """Names of the registered models."""
    return sorted({name for name, _ in MODEL_REGISTRY})


def list_presets(name: str) -> list[str]:
    """Presets registered for one model name."""
    return sorted(preset for n, preset in MODEL_REGISTRY if n == name.lower())


def get_model_spec(name: str, preset: str = "tiny") -> ModelSpec:
    """Look up a model spec by name and preset.

    Raises ``KeyError`` with the available options when the lookup fails.
    """
    try:
        return MODELS.get(f"{name}/{preset}")
    except RegistryKeyError as error:
        raise KeyError(f"unknown model {name!r} preset {preset!r}; "
                       f"available: {MODELS.list()}"
                       + (f" (did you mean {' or '.join(map(repr, error.suggestions))}?)"
                          if error.suggestions else "")) from None


def build_model(name: str, preset: str = "tiny", seed: int = 0) -> nn.Module:
    """Construct a model instance from the registry."""
    return get_model_spec(name, preset).build(seed=seed)
