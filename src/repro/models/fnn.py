"""FNN-3: feed-forward network with three hidden fully-connected layers.

Table 1 of the paper lists FNN-3 on MNIST with 199,210 parameters.  With
28×28 inputs, ten classes and three equal hidden layers of width 174 the
parameter count is 199,240 — within 0.02 % of the paper's figure (the paper
does not give the exact layer widths).  The width is configurable so the
"tiny" preset used in CI trains in seconds.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro import nn
from repro.tensor import Tensor
from repro.utils.rng import new_rng


class FNN3(nn.Module):
    """Three-hidden-layer feed-forward classifier.

    Parameters
    ----------
    input_dim:
        Flattened input dimensionality (784 for MNIST-shaped data).
    hidden_dims:
        Widths of the three hidden layers.
    num_classes:
        Number of output classes.
    seed:
        Initialization seed.
    """

    def __init__(self, input_dim: int = 784, hidden_dims: Sequence[int] = (174, 174, 174),
                 num_classes: int = 10, seed: int = 0):
        super().__init__()
        if len(hidden_dims) != 3:
            raise ValueError("FNN3 requires exactly three hidden layers")
        rng = new_rng("fnn3", seed=seed)
        dims = [int(input_dim)] + [int(d) for d in hidden_dims]
        layers = []
        for i in range(3):
            layers.append(nn.Linear(dims[i], dims[i + 1],
                                    rng=np.random.default_rng(rng.integers(0, 2**63 - 1))))
            layers.append(nn.ReLU())
        layers.append(nn.Linear(dims[-1], int(num_classes),
                                rng=np.random.default_rng(rng.integers(0, 2**63 - 1))))
        self.net = nn.Sequential(*layers)
        self.input_dim = int(input_dim)
        self.num_classes = int(num_classes)

    def forward(self, x: Tensor) -> Tensor:
        """Classify a batch; accepts (N, D) or image-shaped (N, C, H, W) input."""
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        return self.net(x)

    def forward_batched(self, x: Tensor, stack) -> Tensor:
        """Classify stacked replica batches ``(P, N, ...)`` through autograd.

        The trainer prefers the hand-derived
        :class:`~repro.core.batched_replicas.BatchedReplicaExecutor` for MLPs;
        this mirror keeps FNN models runnable under the generic batched
        executor as well (e.g. inside larger compositions).
        """
        if x.ndim > 3:
            x = x.reshape(x.shape[0], x.shape[1], -1)
        return self.net.forward_batched(x, stack)
