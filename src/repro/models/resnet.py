"""ResNet for CIFAR-shaped inputs (He et al., 2016), default depth 20.

The CIFAR ResNet family has depth 6n+2: an initial 3×3 convolution, three
stages of n basic blocks with 16/32/64 base channels, and a global-average-
pool + linear classifier.  ResNet-20 (n=3) has ≈0.27 M parameters, matching
the paper's Table 1 entry of 269,722.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro import nn
from repro.tensor import Tensor, functional as F
from repro.utils.rng import new_rng


def _child_rng(rng: np.random.Generator) -> np.random.Generator:
    return np.random.default_rng(rng.integers(0, 2**63 - 1))


class BasicBlock(nn.Module):
    """Two 3×3 convolutions with a residual connection.

    When the block changes resolution/width, the shortcut is a 1×1 strided
    convolution (projection shortcut, option B of the ResNet paper).
    """

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else new_rng("basic_block", in_channels, out_channels)
        self.conv1 = nn.Conv2d(in_channels, out_channels, 3, stride=stride, padding=1,
                               bias=False, rng=_child_rng(rng))
        self.bn1 = nn.BatchNorm2d(out_channels)
        self.conv2 = nn.Conv2d(out_channels, out_channels, 3, stride=1, padding=1,
                               bias=False, rng=_child_rng(rng))
        self.bn2 = nn.BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = nn.Conv2d(in_channels, out_channels, 1, stride=stride,
                                      bias=False, rng=_child_rng(rng))
            self.shortcut_bn = nn.BatchNorm2d(out_channels)
        else:
            self.shortcut = None
            self.shortcut_bn = None

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        identity = x
        if self.shortcut is not None:
            identity = self.shortcut_bn(self.shortcut(x))
        return (out + identity).relu()

    def forward_batched(self, x: Tensor, stack) -> Tensor:
        """Residual block over a stacked ``(P, N, C, H, W)`` replica batch."""
        out = self.bn1.forward_batched(self.conv1.forward_batched(x, stack), stack).relu()
        out = self.bn2.forward_batched(self.conv2.forward_batched(out, stack), stack)
        identity = x
        if self.shortcut is not None:
            identity = self.shortcut_bn.forward_batched(
                self.shortcut.forward_batched(x, stack), stack)
        return (out + identity).relu()


class ResNet(nn.Module):
    """CIFAR-style ResNet of depth ``6 * blocks_per_stage + 2``.

    Parameters
    ----------
    blocks_per_stage:
        Number of basic blocks in each of the three stages (3 → ResNet-20).
    base_channels:
        Channel widths of the three stages.
    num_classes:
        Output classes.
    in_channels:
        Input image channels (3 for CIFAR).
    """

    def __init__(self, blocks_per_stage: int = 3,
                 base_channels: Sequence[int] = (16, 32, 64),
                 num_classes: int = 10, in_channels: int = 3, seed: int = 0):
        super().__init__()
        if len(base_channels) != 3:
            raise ValueError("ResNet expects three stage widths")
        rng = new_rng("resnet", blocks_per_stage, tuple(base_channels), seed=seed)
        c1, c2, c3 = (int(c) for c in base_channels)

        self.conv1 = nn.Conv2d(in_channels, c1, 3, stride=1, padding=1, bias=False,
                               rng=_child_rng(rng))
        self.bn1 = nn.BatchNorm2d(c1)
        self.stage1 = self._make_stage(c1, c1, blocks_per_stage, stride=1, rng=rng)
        self.stage2 = self._make_stage(c1, c2, blocks_per_stage, stride=2, rng=rng)
        self.stage3 = self._make_stage(c2, c3, blocks_per_stage, stride=2, rng=rng)
        self.pool = nn.GlobalAvgPool2d()
        self.fc = nn.Linear(c3, int(num_classes), rng=_child_rng(rng))
        self.depth = 6 * blocks_per_stage + 2
        self.num_classes = int(num_classes)

    @staticmethod
    def _make_stage(in_channels: int, out_channels: int, blocks: int, stride: int,
                    rng: np.random.Generator) -> nn.Sequential:
        layers = [BasicBlock(in_channels, out_channels, stride=stride, rng=_child_rng(rng))]
        for _ in range(blocks - 1):
            layers.append(BasicBlock(out_channels, out_channels, stride=1, rng=_child_rng(rng)))
        return nn.Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.stage1(out)
        out = self.stage2(out)
        out = self.stage3(out)
        out = self.pool(out)
        return self.fc(out)

    def forward_batched(self, x: Tensor, stack) -> Tensor:
        """Classify all replicas' batches at once (``x`` is ``(P, N, C, H, W)``).

        Mirrors :meth:`forward` layer for layer with the batched module
        kernels, writing gradients straight into the world's flat buffers via
        ``stack``'s pinned parameter views.
        """
        out = self.bn1.forward_batched(self.conv1.forward_batched(x, stack), stack).relu()
        out = self.stage1.forward_batched(out, stack)
        out = self.stage2.forward_batched(out, stack)
        out = self.stage3.forward_batched(out, stack)
        out = self.pool.forward_batched(out, stack)
        return self.fc.forward_batched(out, stack)


def ResNet20(num_classes: int = 10, in_channels: int = 3, seed: int = 0) -> ResNet:
    """The ResNet-20 configuration evaluated in the paper."""
    return ResNet(blocks_per_stage=3, base_channels=(16, 32, 64),
                  num_classes=num_classes, in_channels=in_channels, seed=seed)
