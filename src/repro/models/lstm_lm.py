"""LSTM language model for Penn-Treebank-style data.

The paper's LSTM-PTB entry (66,034,000 parameters, perplexity metric) matches
the "large" PTB configuration: a 2-layer LSTM with 1500 hidden units, 1500-d
embeddings and a 10,000-word vocabulary.  The model predicts the next token at
every position; perplexity is exp(mean cross-entropy).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro import nn
from repro.tensor import Tensor, functional as F
from repro.utils.rng import new_rng


class LSTMLanguageModel(nn.Module):
    """Embedding → multi-layer LSTM → linear decoder over the vocabulary.

    Parameters
    ----------
    vocab_size:
        Vocabulary size ``V``.
    embedding_dim:
        Token embedding dimensionality.
    hidden_size:
        LSTM hidden state size.
    num_layers:
        Number of stacked LSTM layers.
    dropout:
        Dropout probability applied to the LSTM output.
    """

    def __init__(self, vocab_size: int = 10000, embedding_dim: int = 1500,
                 hidden_size: int = 1500, num_layers: int = 2, dropout: float = 0.0,
                 seed: int = 0):
        super().__init__()
        rng = new_rng("lstm_lm", vocab_size, hidden_size, seed=seed)
        self.embedding = nn.Embedding(vocab_size, embedding_dim,
                                      rng=np.random.default_rng(rng.integers(0, 2**63 - 1)))
        self.lstm = nn.LSTM(embedding_dim, hidden_size, num_layers,
                            rng=np.random.default_rng(rng.integers(0, 2**63 - 1)))
        self.dropout = nn.Dropout(dropout) if dropout > 0 else None
        self.decoder = nn.Linear(hidden_size, vocab_size,
                                 rng=np.random.default_rng(rng.integers(0, 2**63 - 1)))
        self.vocab_size = int(vocab_size)
        self.hidden_size = int(hidden_size)
        self.num_layers = int(num_layers)

    def forward(self, tokens: np.ndarray,
                state: Optional[List[Tuple[Tensor, Tensor]]] = None
                ) -> Tuple[Tensor, List[Tuple[Tensor, Tensor]]]:
        """Score next-token logits for a (T, N) batch of token ids.

        Returns logits of shape (T*N, V) — flattened so they feed directly
        into :func:`repro.tensor.functional.cross_entropy` — and the final
        LSTM state for truncated BPTT.
        """
        tokens = np.asarray(tokens)
        if tokens.ndim != 2:
            raise ValueError("tokens must have shape (seq_len, batch)")
        embedded = self.embedding(tokens)                     # (T, N, D)
        output, state = self.lstm(embedded, state)            # (T, N, H)
        if self.dropout is not None:
            output = self.dropout(output)
        flat = output.reshape(-1, self.hidden_size)            # (T*N, H)
        logits = self.decoder(flat)                            # (T*N, V)
        return logits, state

    def forward_batched(self, tokens: np.ndarray,
                        state: Optional[List[Tuple[Tensor, Tensor]]], stack
                        ) -> Tuple[Tensor, List[Tuple[Tensor, Tensor]]]:
        """Score next-token logits for all replicas at once.

        ``tokens`` is the stacked per-replica batch ``(P, T, N)``; parameters
        come from ``stack``'s ``(P, ...)`` views of the world's flat buffers.
        Returns logits ``(P, T*N, V)`` and the stacked LSTM state — each
        replica slice bit-identical to :meth:`forward` on that replica.
        Dropout models fall back to the per-replica loop (masks are drawn from
        per-replica generators whose order a batched pass cannot reproduce).
        """
        tokens = np.asarray(tokens)
        if tokens.ndim != 3:
            raise ValueError("stacked tokens must have shape (world_size, seq_len, batch)")
        if self.dropout is not None:
            raise ValueError("batched forward does not support dropout")
        embedded = self.embedding.forward_batched(tokens, stack)    # (P, T, N, D)
        output, state = self.lstm.forward_batched(embedded, state, stack)
        flat = output.reshape(output.shape[0], -1, self.hidden_size)  # (P, T*N, H)
        logits = self.decoder.forward_batched(flat, stack)            # (P, T*N, V)
        return logits, state

    def initial_state_batched(self, world_size: int, batch_size: int
                              ) -> List[Tuple[Tensor, Tensor]]:
        """Zero per-layer LSTM state for a stacked ``(P, N)`` replica batch."""
        return self.lstm.initial_state_batched(world_size, batch_size)

    def detach_state(self, state: List[Tuple[Tensor, Tensor]]) -> List[Tuple[Tensor, Tensor]]:
        """Detach the carried state between truncated-BPTT windows."""
        return self.lstm.detach_state(state)

    @staticmethod
    def perplexity(mean_cross_entropy: float) -> float:
        """Perplexity from a mean cross-entropy in nats."""
        return float(np.exp(min(30.0, mean_cross_entropy)))
