"""VGG-16 adapted for CIFAR-shaped inputs (Simonyan & Zisserman, 2015).

The CIFAR variant keeps the 13 convolutional layers of configuration "D" and
replaces the ImageNet classifier with a single 512→classes linear layer,
giving ≈14.7 M parameters — the value listed in Table 1 of the paper
(14,728,266).  Channel widths are configurable so the "tiny" preset used in
tests is fast.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro import nn
from repro.tensor import Tensor
from repro.utils.rng import new_rng

# Configuration "D" from the VGG paper: numbers are output channels, "M" is 2x2 max pool.
VGG16_LAYOUT: Sequence[Union[int, str]] = (
    64, 64, "M",
    128, 128, "M",
    256, 256, 256, "M",
    512, 512, 512, "M",
    512, 512, 512, "M",
)


def _child_rng(rng: np.random.Generator) -> np.random.Generator:
    return np.random.default_rng(rng.integers(0, 2**63 - 1))


class VGG16(nn.Module):
    """VGG-16 with BatchNorm for CIFAR-sized images.

    Parameters
    ----------
    num_classes:
        Output classes.
    in_channels:
        Input image channels.
    width_multiplier:
        Scales every convolutional width; 1.0 reproduces the paper model, a
        small value (e.g. 0.125) gives a fast test model with the same shape.
    image_size:
        Input spatial size; must be divisible by 32 so five pools reach 1×1
        (or a small spatial map that global pooling collapses).
    """

    def __init__(self, num_classes: int = 10, in_channels: int = 3,
                 width_multiplier: float = 1.0, image_size: int = 32, seed: int = 0):
        super().__init__()
        if image_size % 32 != 0:
            raise ValueError("image_size must be a multiple of 32 for five pooling stages")
        rng = new_rng("vgg16", width_multiplier, seed=seed)
        layers: List[nn.Module] = []
        channels = int(in_channels)
        final_width = 0
        for item in VGG16_LAYOUT:
            if item == "M":
                layers.append(nn.MaxPool2d(2))
                continue
            width = max(1, int(round(int(item) * width_multiplier)))
            layers.append(nn.Conv2d(channels, width, 3, padding=1, bias=False,
                                    rng=_child_rng(rng)))
            layers.append(nn.BatchNorm2d(width))
            layers.append(nn.ReLU())
            channels = width
            final_width = width
        self.features = nn.Sequential(*layers)
        self.pool = nn.GlobalAvgPool2d()
        self.classifier = nn.Linear(final_width, int(num_classes), rng=_child_rng(rng))
        self.num_classes = int(num_classes)

    def forward(self, x: Tensor) -> Tensor:
        out = self.features(x)
        out = self.pool(out)
        return self.classifier(out)

    def forward_batched(self, x: Tensor, stack) -> Tensor:
        """Classify all replicas' batches at once (``x`` is ``(P, N, C, H, W)``)."""
        out = self.features.forward_batched(x, stack)
        out = self.pool.forward_batched(out, stack)
        return self.classifier.forward_batched(out, stack)
