"""Tests for synthetic datasets, data loading and sharding."""

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    DataLoader,
    LanguageModelBatcher,
    SyntheticTextConfig,
    get_dataset,
    make_synthetic_cifar10,
    make_synthetic_mnist,
    make_synthetic_ptb,
    shard_dataset,
)


class TestArrayDataset:
    def test_len_and_getitem(self, rng):
        ds = ArrayDataset(rng.standard_normal((10, 3)), np.arange(10))
        assert len(ds) == 10
        x, y = ds[4]
        assert x.shape == (3,)
        assert y == 4

    def test_length_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            ArrayDataset(rng.standard_normal((5, 2)), np.arange(4))

    def test_subset(self, rng):
        ds = ArrayDataset(rng.standard_normal((10, 2)), np.arange(10))
        sub = ds.subset(np.array([1, 3, 5]))
        assert len(sub) == 3
        assert sub[1][1] == 3

    def test_num_classes(self):
        ds = ArrayDataset(np.zeros((6, 1)), np.array([0, 1, 2, 2, 1, 0]))
        assert ds.num_classes == 3

    def test_num_classes_float_targets_raises(self):
        ds = ArrayDataset(np.zeros((3, 1)), np.zeros(3, dtype=np.float32))
        with pytest.raises(ValueError):
            _ = ds.num_classes


class TestSyntheticImages:
    def test_mnist_shapes(self):
        train, test = make_synthetic_mnist(num_train=64, num_test=16, image_size=28)
        assert train.inputs.shape == (64, 1, 28, 28)
        assert test.inputs.shape == (16, 1, 28, 28)
        assert train.targets.dtype == np.int64
        assert set(np.unique(train.targets)).issubset(set(range(10)))

    def test_cifar_shapes(self):
        train, _ = make_synthetic_cifar10(num_train=32, num_test=8, image_size=32)
        assert train.inputs.shape == (32, 3, 32, 32)

    def test_deterministic_given_seed(self):
        a, _ = make_synthetic_mnist(num_train=16, num_test=4, seed=7)
        b, _ = make_synthetic_mnist(num_train=16, num_test=4, seed=7)
        np.testing.assert_array_equal(a.inputs, b.inputs)
        np.testing.assert_array_equal(a.targets, b.targets)

    def test_different_seed_differs(self):
        a, _ = make_synthetic_mnist(num_train=16, num_test=4, seed=1)
        b, _ = make_synthetic_mnist(num_train=16, num_test=4, seed=2)
        assert not np.allclose(a.inputs, b.inputs)

    def test_train_and_test_share_class_structure(self):
        # A nearest-prototype classifier fit on train prototypes should beat
        # chance on the test split, proving both splits share prototypes.
        train, test = make_synthetic_mnist(num_train=512, num_test=256, image_size=8,
                                           noise_std=0.3)
        prototypes = np.stack([train.inputs[train.targets == c].mean(axis=0)
                               for c in range(10)])
        flat_test = test.inputs.reshape(len(test), -1)
        flat_proto = prototypes.reshape(10, -1)
        distances = ((flat_test[:, None, :] - flat_proto[None, :, :]) ** 2).sum(axis=2)
        accuracy = (distances.argmin(axis=1) == test.targets).mean()
        assert accuracy > 0.5


class TestSyntheticText:
    def test_stream_properties(self):
        train, test, vocab = make_synthetic_ptb(SyntheticTextConfig(
            vocab_size=50, train_tokens=2000, test_tokens=500, seed=0))
        assert vocab == 50
        assert train.shape == (2000,)
        assert test.shape == (500,)
        assert train.min() >= 0 and train.max() < 50

    def test_deterministic(self):
        cfg = SyntheticTextConfig(vocab_size=30, train_tokens=500, test_tokens=100, seed=3)
        a = make_synthetic_ptb(cfg)[0]
        b = make_synthetic_ptb(cfg)[0]
        np.testing.assert_array_equal(a, b)

    def test_markov_structure_is_learnable(self):
        # The bigram distribution should be far from uniform: knowing the
        # current token should substantially restrict the next token.
        train, _, vocab = make_synthetic_ptb(SyntheticTextConfig(
            vocab_size=40, train_tokens=20_000, test_tokens=100, branching=4, seed=0))
        successors = {}
        for a, b in zip(train[:-1], train[1:]):
            successors.setdefault(int(a), set()).add(int(b))
        mean_branching = np.mean([len(s) for s in successors.values()])
        assert mean_branching <= 8  # far below the vocabulary size of 40


class TestLanguageModelBatcher:
    def test_batch_shapes_and_shift(self):
        tokens = np.arange(100)
        batcher = LanguageModelBatcher(tokens, batch_size=4, seq_len=5)
        inputs, targets = next(batcher.batches())
        assert inputs.shape == (5, 4)
        assert targets.shape == (5, 4)
        np.testing.assert_array_equal(targets[:-1], inputs[1:])

    def test_len_counts_windows(self):
        batcher = LanguageModelBatcher(np.arange(101), batch_size=4, seq_len=5)
        assert len(batcher) == (101 // 4 - 1) // 5

    def test_too_short_stream_raises(self):
        with pytest.raises(ValueError):
            LanguageModelBatcher(np.arange(5), batch_size=4, seq_len=5)

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            LanguageModelBatcher(np.arange(100), batch_size=0, seq_len=5)

    def test_shard_partitions_columns(self):
        batcher = LanguageModelBatcher(np.arange(400), batch_size=8, seq_len=5)
        shard0 = batcher.shard(0, 2)
        shard1 = batcher.shard(1, 2)
        assert shard0.batch_size == 4 and shard1.batch_size == 4
        full = batcher.data
        np.testing.assert_array_equal(np.hstack([shard0.data, shard1.data]), full)

    def test_shard_bad_rank(self):
        batcher = LanguageModelBatcher(np.arange(100), batch_size=4, seq_len=5)
        with pytest.raises(ValueError):
            batcher.shard(3, 2)

    def test_shard_more_workers_than_columns(self):
        batcher = LanguageModelBatcher(np.arange(100), batch_size=2, seq_len=5)
        with pytest.raises(ValueError):
            batcher.shard(2, 3)


class TestShardingAndLoader:
    def test_shards_are_disjoint_and_cover(self):
        ds = ArrayDataset(np.arange(100).reshape(100, 1), np.arange(100))
        shards = [shard_dataset(ds, r, 4) for r in range(4)]
        seen = np.concatenate([s.targets for s in shards])
        assert len(seen) == 100
        assert len(np.unique(seen)) == 100

    def test_shard_rank_out_of_range(self):
        ds = ArrayDataset(np.zeros((10, 1)), np.arange(10))
        with pytest.raises(ValueError):
            shard_dataset(ds, 4, 4)

    def test_more_workers_than_examples_raises(self):
        ds = ArrayDataset(np.zeros((2, 1)), np.arange(2))
        with pytest.raises(ValueError):
            shard_dataset(ds, 0, 5)

    def test_dataloader_batch_shapes(self, rng):
        ds = ArrayDataset(rng.standard_normal((50, 3)), np.arange(50) % 5)
        loader = DataLoader(ds, batch_size=8, rng=rng)
        xs, ys = next(iter(loader))
        assert xs.shape == (8, 3)
        assert ys.shape == (8,)
        assert len(loader) == 6

    def test_dataloader_drop_last_false(self, rng):
        ds = ArrayDataset(rng.standard_normal((10, 2)), np.arange(10))
        loader = DataLoader(ds, batch_size=4, drop_last=False, shuffle=False, rng=rng)
        batches = list(loader)
        assert len(batches) == 3
        assert batches[-1][0].shape[0] == 2

    def test_dataloader_shuffle_changes_order_but_not_content(self):
        ds = ArrayDataset(np.arange(20).reshape(20, 1), np.arange(20))
        loader = DataLoader(ds, batch_size=20, shuffle=True,
                            rng=np.random.default_rng(0))
        _, first_epoch = next(iter(loader))
        _, second_epoch = next(iter(loader))
        assert set(first_epoch) == set(range(20))
        assert not np.array_equal(first_epoch, second_epoch)

    def test_dataloader_invalid_batch_size(self):
        ds = ArrayDataset(np.zeros((4, 1)), np.arange(4))
        with pytest.raises(ValueError):
            DataLoader(ds, batch_size=0)


class TestDatasetRegistry:
    def test_image_registry_entries(self):
        for name in ("mnist_tiny", "cifar10_tiny", "cifar10_tiny32"):
            train, test = get_dataset(name, num_train=32, num_test=8)
            assert len(train) == 32 and len(test) == 8

    def test_text_registry_entry(self):
        train, test, vocab = get_dataset("ptb_tiny", num_train=1000, num_test=200)
        assert vocab == 200
        assert len(train) == 1000

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            get_dataset("imagenet")
