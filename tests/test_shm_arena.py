"""Shared-memory substrate: arena lifecycle, barrier, communicator.

The lifecycle tests are the hard guarantees of the multiprocessing backend:
no ``/dev/shm`` segment may outlive its owner after a clean exit, a mid-run
exception, or a SIGKILLed attached worker.  The communicator tests exercise
:class:`~repro.backends.shm.ShmCommunicator` — the second implementation of
the ``Communicator`` interface — across *real* processes.
"""

import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro.backends.shm import (
    BarrierTimeout,
    SharedMemoryArena,
    ShmBarrier,
    ShmCommunicator,
    communicator_slots,
    leaked_segments,
)
from repro.comm.backend import CollectiveOp

SLOTS = {"a": ((4, 3), np.float32), "b": ((5,), np.int64), "c": ((2,), np.float64)}


# --------------------------------------------------------------------------- #
# arena basics
# --------------------------------------------------------------------------- #
class TestArena:
    def test_slots_are_typed_views(self):
        with SharedMemoryArena(SLOTS) as arena:
            assert arena["a"].shape == (4, 3) and arena["a"].dtype == np.float32
            assert arena["b"].shape == (5,) and arena["b"].dtype == np.int64
            arena["a"][...] = 7.5
            assert float(arena["a"].sum()) == 7.5 * 12

    def test_views_are_cached(self):
        with SharedMemoryArena(SLOTS) as arena:
            assert arena["a"] is arena["a"]

    def test_slots_are_aligned_and_independent(self):
        with SharedMemoryArena(SLOTS) as arena:
            arena["a"][...] = np.nan
            arena["b"][...] = -1
            arena["c"][...] = 3.25
            # Writing one slot never bleeds into a neighbour.
            assert np.all(arena["b"] == -1)
            assert np.all(arena["c"] == 3.25)

    def test_attach_sees_owner_writes(self):
        with SharedMemoryArena(SLOTS) as owner:
            owner["a"][...] = 42.0
            attached = SharedMemoryArena(SLOTS, name=owner.name, create=False)
            assert np.all(attached["a"] == 42.0)
            attached["b"][...] = 9
            assert np.all(owner["b"] == 9)
            attached.close()

    def test_contains(self):
        with SharedMemoryArena(SLOTS) as arena:
            assert "a" in arena and "missing" not in arena


# --------------------------------------------------------------------------- #
# lifecycle hardening: /dev/shm must never leak
# --------------------------------------------------------------------------- #
class TestArenaLifecycle:
    def test_clean_close_unlinks(self):
        arena = SharedMemoryArena(SLOTS)
        name = arena.name
        assert name in leaked_segments()
        arena.close()
        assert name not in leaked_segments()

    def test_close_is_idempotent(self):
        arena = SharedMemoryArena(SLOTS)
        arena.close()
        arena.close()

    def test_midrun_exception_unlinks_via_context_manager(self):
        with pytest.raises(RuntimeError):
            with SharedMemoryArena(SLOTS) as arena:
                name = arena.name
                raise RuntimeError("mid-run failure")
        assert name not in leaked_segments()

    def test_close_with_live_views_still_unlinks(self):
        arena = SharedMemoryArena(SLOTS)
        name = arena.name
        view = arena["a"]          # exported pointer keeps the mapping alive
        arena.close()
        assert name not in leaked_segments()
        view[...] = 1.0            # the mapping itself stays valid

    def test_sigkilled_attached_child_does_not_unlink(self):
        """A SIGKILLed worker must not tear the segment down under the owner."""
        arena = SharedMemoryArena(SLOTS)
        name = arena.name
        context = multiprocessing.get_context("fork")

        def child():
            attached = SharedMemoryArena(SLOTS, name=name, create=False)
            attached["b"][...] = 5
            os.kill(os.getpid(), signal.SIGKILL)

        process = context.Process(target=child)
        process.start()
        process.join(timeout=30.0)
        assert process.exitcode == -signal.SIGKILL
        # Owner still sees the segment (and the child's write), then reclaims.
        assert name in leaked_segments()
        assert np.all(arena["b"] == 5)
        arena.close()
        assert name not in leaked_segments()

    def test_cleanly_exited_child_does_not_unlink(self):
        arena = SharedMemoryArena(SLOTS)
        name = arena.name
        context = multiprocessing.get_context("fork")

        def child():
            attached = SharedMemoryArena(SLOTS, name=name, create=False)
            attached.close()

        process = context.Process(target=child)
        process.start()
        process.join(timeout=30.0)
        assert process.exitcode == 0
        assert name in leaked_segments()
        arena.close()
        assert name not in leaked_segments()

    def test_attached_side_close_never_unlinks(self):
        owner = SharedMemoryArena(SLOTS)
        attached = SharedMemoryArena(SLOTS, name=owner.name, create=False)
        attached.close()
        assert owner.name in leaked_segments()
        owner.close()
        assert owner.name not in leaked_segments()


# --------------------------------------------------------------------------- #
# barrier
# --------------------------------------------------------------------------- #
class TestShmBarrier:
    def test_single_party_passes_immediately(self):
        arrive = np.zeros(1, dtype=np.int64)
        barrier = ShmBarrier(arrive, index=0)
        assert barrier.wait() == 1
        assert barrier.wait() == 2

    def test_timeout_raises_naming_arrivals(self):
        arrive = np.zeros(2, dtype=np.int64)
        barrier = ShmBarrier(arrive, index=0)
        with pytest.raises(BarrierTimeout, match="generation 1"):
            barrier.wait(timeout=0.05)

    def test_poll_callback_may_abort(self):
        arrive = np.zeros(2, dtype=np.int64)
        barrier = ShmBarrier(arrive, index=0)

        def poll():
            raise RuntimeError("peer died")

        with pytest.raises(RuntimeError, match="peer died"):
            barrier.wait(poll=poll)

    def test_rejects_wrong_dtype(self):
        with pytest.raises(ValueError):
            ShmBarrier(np.zeros(2, dtype=np.int32), index=0)

    def test_two_processes_rendezvous(self):
        arena = SharedMemoryArena({"arrive": ((2,), np.int64),
                                   "value": ((1,), np.int64)})
        context = multiprocessing.get_context("fork")

        def child():
            attached = SharedMemoryArena(arena.slots, name=arena.name,
                                         create=False)
            barrier = ShmBarrier(attached["arrive"], index=1)
            attached["value"][0] = 17
            barrier.wait(timeout=30.0)     # publish
            barrier.wait(timeout=30.0)     # parent has read
            attached.close()

        process = context.Process(target=child)
        process.start()
        barrier = ShmBarrier(arena["arrive"], index=0)
        barrier.wait(timeout=30.0)
        assert int(arena["value"][0]) == 17
        barrier.wait(timeout=30.0)
        process.join(timeout=30.0)
        assert process.exitcode == 0
        arena.close()


# --------------------------------------------------------------------------- #
# communicator across real processes
# --------------------------------------------------------------------------- #
def _comm_worker(rank, world_size, name, slots, out_name, out_slots):
    arena = SharedMemoryArena(slots, name=name, create=False)
    out = SharedMemoryArena(out_slots, name=out_name, create=False)
    comm = ShmCommunicator(arena, rank, world_size, timeout=60.0)
    payload = np.full(3, float(rank + 1), dtype=np.float64)

    gathered = comm.allgather(payload)
    out["gather"][rank] = np.stack(gathered).sum()

    reduced = comm.allreduce(payload, op=CollectiveOp.SUM)
    out["reduce"][rank] = reduced

    mean = comm.allreduce(payload, op=CollectiveOp.MEAN)
    out["mean"][rank] = mean

    root_value = comm.broadcast(np.arange(4, dtype=np.int64) if rank == 0
                                else np.zeros(4, dtype=np.int64), root=0)
    out["bcast"][rank] = root_value

    comm.barrier()
    arena.close()
    out.close()


class TestShmCommunicator:
    def test_collectives_across_processes(self):
        P = 3
        slots = communicator_slots(P, capacity_bytes=1024)
        arena = SharedMemoryArena(slots)
        out_slots = {"gather": ((P,), np.float64),
                     "reduce": ((P, 3), np.float64),
                     "mean": ((P, 3), np.float64),
                     "bcast": ((P, 4), np.int64)}
        out = SharedMemoryArena(out_slots)
        context = multiprocessing.get_context("fork")
        processes = [context.Process(
            target=_comm_worker,
            args=(rank, P, arena.name, arena.slots, out.name, out.slots))
            for rank in range(P)]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=120.0)
            assert process.exitcode == 0

        # allgather: sum over ranks of (rank+1) * 3 elements = (1+2+3)*3.
        assert np.all(out["gather"] == 18.0)
        # allreduce SUM: every element is 1+2+3; identical on every rank.
        assert np.all(out["reduce"] == 6.0)
        assert np.all(out["mean"] == 2.0)
        assert np.all(out["bcast"] == np.arange(4))
        arena.close()
        out.close()
        assert leaked_segments() == []

    def test_interface_properties(self):
        P = 2
        arena = SharedMemoryArena(communicator_slots(P, capacity_bytes=64))
        comm = ShmCommunicator(arena, 0, P)
        assert comm.rank == 0 and comm.world_size == 2
        arena.close()

    def test_oversized_payload_rejected(self):
        arena = SharedMemoryArena(communicator_slots(1, capacity_bytes=16))
        comm = ShmCommunicator(arena, 0, 1)
        with pytest.raises(ValueError, match="exceeds the staging capacity"):
            comm.allgather(np.zeros(100, dtype=np.float64))
        arena.close()

    def test_unsupported_dtype_rejected(self):
        arena = SharedMemoryArena(communicator_slots(1, capacity_bytes=64))
        comm = ShmCommunicator(arena, 0, 1)
        with pytest.raises(TypeError, match="unsupported dtype"):
            comm.allgather(np.zeros(2, dtype=np.complex128))
        arena.close()

    def test_single_rank_roundtrip_preserves_dtype_and_shape(self):
        arena = SharedMemoryArena(communicator_slots(1, capacity_bytes=256))
        comm = ShmCommunicator(arena, 0, 1)
        payload = np.arange(6, dtype=np.float32).reshape(2, 3)
        [result] = comm.allgather(payload)
        assert result.dtype == payload.dtype and result.shape == payload.shape
        assert np.array_equal(result, payload)
        arena.close()
