"""Tests for the analytic cost model behind Figures 4/5 and Table 2."""

import numpy as np
import pytest

from repro.comm import NetworkModel, ethernet_10gbps, infiniband_100gbps
from repro.core.cost_model import CompressionTimingEstimator, CostModel


@pytest.fixture(scope="module")
def cost_model():
    # A small measurement sample keeps the test fast; the extrapolation logic
    # is what is under test.
    return CostModel(timing=CompressionTimingEstimator(sample_size=50_000, repeats=1))


class TestCompressionTimingEstimator:
    def test_dense_costs_nothing(self):
        estimator = CompressionTimingEstimator(sample_size=10_000, repeats=1)
        assert estimator.compression_time("dense", 10**8) == 0.0

    def test_measurement_cached(self):
        estimator = CompressionTimingEstimator(sample_size=10_000, repeats=1)
        first = estimator.compression_time("a2sgd", 10_000)
        assert "a2sgd" in estimator._cache
        second = estimator.compression_time("a2sgd", 10_000)
        assert first == second

    def test_extrapolation_grows_with_n(self):
        estimator = CompressionTimingEstimator(sample_size=10_000, repeats=1)
        small = estimator.compression_time("a2sgd", 10_000)
        large = estimator.compression_time("a2sgd", 10_000_000)
        assert large > small

    def test_qsgd_superlinear_extrapolation(self):
        estimator = CompressionTimingEstimator(sample_size=10_000, repeats=1)
        t1 = estimator.compression_time("qsgd", 10_000)
        t100 = estimator.compression_time("qsgd", 1_000_000)
        # Exponent 1.25 means 100x size -> more than 100x time.
        assert t100 / max(t1, 1e-12) > 100

    def test_invalid_sample_size(self):
        with pytest.raises(ValueError):
            CompressionTimingEstimator(sample_size=0)


class TestTable2Columns(object):
    def test_model_parameters_match_table1(self, cost_model):
        assert cost_model.model_parameters("fnn3") == 199_210
        assert cost_model.model_parameters("lstm_ptb") == 66_034_000
        with pytest.raises(KeyError):
            cost_model.model_parameters("bert")

    def test_communication_bits_column(self, cost_model):
        n = cost_model.model_parameters("lstm_ptb")
        assert cost_model.communication_bits("dense", n) == 32 * n
        assert cost_model.communication_bits("a2sgd", n) == 64
        assert cost_model.communication_bits("qsgd", n) == pytest.approx(2.8 * n + 32)

    def test_computation_complexity_column(self, cost_model):
        assert cost_model.computation_complexity("a2sgd", 10**6) == "O(n)"
        assert cost_model.computation_complexity("dense", 10**6) == "O(1)"


class TestIterationTime:
    def test_compute_time_shrinks_with_workers(self, cost_model):
        t2 = cost_model.compute_time("vgg16", 2)
        t8 = cost_model.compute_time("vgg16", 8)
        assert t8 < t2

    def test_lstm_compute_includes_sequence_factor(self, cost_model):
        lstm = cost_model.compute_time("lstm_ptb", 8)
        vgg = cost_model.compute_time("vgg16", 8)
        # LSTM-PTB has ~4.5x VGG's parameters and a 35-step unroll.
        assert lstm > vgg

    def test_breakdown_components_positive(self, cost_model):
        breakdown = cost_model.iteration_breakdown("vgg16", "a2sgd", 8)
        assert breakdown.compute_s > 0
        assert breakdown.communication_s > 0
        assert breakdown.compression_s >= 0
        assert breakdown.total_s == pytest.approx(
            breakdown.compute_s + breakdown.compression_s + breakdown.communication_s)

    def test_a2sgd_comm_time_negligible_even_for_largest_model(self, cost_model):
        breakdown = cost_model.iteration_breakdown("lstm_ptb", "a2sgd", 16)
        assert breakdown.communication_s < 1e-4

    def test_dense_comm_dominates_for_large_models(self, cost_model):
        dense = cost_model.iteration_breakdown("lstm_ptb", "dense", 16)
        a2sgd = cost_model.iteration_breakdown("lstm_ptb", "a2sgd", 16)
        assert dense.communication_s > 100 * a2sgd.communication_s

    def test_figure4_shape_large_models(self, cost_model):
        """For VGG-16 and LSTM-PTB, A2SGD and Gaussian-K beat Dense, Top-K and QSGD."""
        for model in ("vgg16", "lstm_ptb"):
            times = {a: cost_model.iteration_time(model, a, 8)
                     for a in ("dense", "topk", "qsgd", "gaussiank", "a2sgd")}
            assert times["a2sgd"] < times["dense"]
            assert times["a2sgd"] < times["qsgd"]
            assert times["gaussiank"] < times["qsgd"]
            assert times["qsgd"] == max(times.values())

    def test_figure4_shape_small_models(self, cost_model):
        """For FNN-3/ResNet-20 the algorithms are within a small factor of Dense."""
        times = {a: cost_model.iteration_time("fnn3", a, 8)
                 for a in ("dense", "gaussiank", "a2sgd")}
        assert times["a2sgd"] < 2.0 * times["dense"]
        assert times["gaussiank"] < 2.5 * times["dense"]

    def test_comm_time_grows_with_worker_count(self, cost_model):
        t2 = cost_model.communication_time("dense", "vgg16", 2)
        t16 = cost_model.communication_time("dense", "vgg16", 16)
        assert t16 > t2

    def test_slower_network_increases_dense_gap(self):
        fast = CostModel(network=infiniband_100gbps(),
                         timing=CompressionTimingEstimator(sample_size=20_000, repeats=1))
        slow = CostModel(network=ethernet_10gbps(),
                         timing=CompressionTimingEstimator(sample_size=20_000, repeats=1))
        gap_fast = (fast.iteration_time("lstm_ptb", "dense", 8)
                    / fast.iteration_time("lstm_ptb", "a2sgd", 8))
        gap_slow = (slow.iteration_time("lstm_ptb", "dense", 8)
                    / slow.iteration_time("lstm_ptb", "a2sgd", 8))
        assert gap_slow > gap_fast


class TestTotalTimeAndScaling:
    def test_total_time_uses_paper_epochs(self, cost_model):
        single_epoch = cost_model.total_training_time("fnn3", "a2sgd", 8, epochs=1)
        paper_epochs = cost_model.total_training_time("fnn3", "a2sgd", 8)
        assert paper_epochs == pytest.approx(30 * single_epoch, rel=1e-6)

    def test_total_time_decreases_with_more_workers(self, cost_model):
        """Figure 5's shape: data parallelism reduces total time for every algorithm."""
        for algorithm in ("dense", "a2sgd", "gaussiank"):
            times = [cost_model.total_training_time("vgg16", algorithm, p)
                     for p in (2, 4, 8, 16)]
            assert all(a > b for a, b in zip(times, times[1:])), algorithm

    def test_a2sgd_total_time_beats_dense_for_lstm(self, cost_model):
        """The headline 1.72x-vs-dense improvement direction for LSTM-PTB."""
        dense = cost_model.total_training_time("lstm_ptb", "dense", 16)
        a2sgd = cost_model.total_training_time("lstm_ptb", "a2sgd", 16)
        assert a2sgd < dense
        assert dense / a2sgd > 1.1

    def test_a2sgd_total_time_beats_qsgd_and_topk_for_lstm(self, cost_model):
        """Paper: 3.2x vs Top-K and 23.2x vs QSGD on LSTM-PTB (direction + order)."""
        qsgd = cost_model.total_training_time("lstm_ptb", "qsgd", 16)
        topk = cost_model.total_training_time("lstm_ptb", "topk", 16)
        a2sgd = cost_model.total_training_time("lstm_ptb", "a2sgd", 16)
        assert a2sgd < topk < qsgd
        assert qsgd / a2sgd > topk / a2sgd

    def test_throughput_definition(self, cost_model):
        throughput = cost_model.throughput("resnet20", "a2sgd", 8)
        assert throughput == pytest.approx(128 / cost_model.iteration_time("resnet20", "a2sgd", 8))

    def test_scaling_efficiency_reference_is_dense_at_two(self, cost_model):
        dense_at_2 = cost_model.scaling_efficiency("resnet20", "dense", world_size=2)
        assert dense_at_2 == pytest.approx(1.0)

    def test_scaling_efficiency_table_shape(self, cost_model):
        """Table 2 last column: A2SGD and Gaussian-K scale best; QSGD worst for LSTM."""
        effs = {a: cost_model.scaling_efficiency("lstm_ptb", a, world_size=8)
                for a in ("dense", "qsgd", "topk", "gaussiank", "a2sgd")}
        assert effs["a2sgd"] > effs["dense"]
        assert effs["gaussiank"] > effs["dense"]
        assert effs["qsgd"] == min(effs.values())
        assert effs["a2sgd"] > 1.0
