"""Tests for the in-process world and its traffic/time accounting."""

import numpy as np
import pytest

from repro.comm import CollectiveOp, InProcessWorld, NetworkModel


class TestInProcessWorld:
    def test_requires_positive_world_size(self):
        with pytest.raises(ValueError):
            InProcessWorld(0)

    def test_allreduce_mean(self, rng):
        world = InProcessWorld(4)
        buffers = [rng.standard_normal(50).astype(np.float32) for _ in range(4)]
        results = world.allreduce(buffers)
        np.testing.assert_allclose(results[0], np.mean(np.stack(buffers), axis=0),
                                   rtol=1e-5, atol=1e-6)

    def test_allreduce_naive_backend_option(self, rng):
        world = InProcessWorld(3, use_ring_allreduce=False)
        buffers = [rng.standard_normal(7).astype(np.float32) for _ in range(3)]
        results = world.allreduce(buffers)
        np.testing.assert_allclose(results[0], np.mean(np.stack(buffers), axis=0), rtol=1e-5)

    def test_wrong_number_of_contributions(self, rng):
        world = InProcessWorld(4)
        with pytest.raises(ValueError):
            world.allreduce([rng.standard_normal(3)] * 3)

    def test_allgather_and_broadcast(self, rng):
        world = InProcessWorld(3)
        buffers = [np.full(4, float(r)) for r in range(3)]
        gathered = world.allgather(buffers)
        assert len(gathered[1]) == 3
        broadcasted = world.broadcast(buffers, root=1)
        np.testing.assert_array_equal(broadcasted[2], buffers[1])

    def test_reduce_scatter(self, rng):
        world = InProcessWorld(2)
        buffers = [np.ones(6), 2 * np.ones(6)]
        chunks = world.reduce_scatter(buffers, CollectiveOp.SUM)
        np.testing.assert_allclose(np.concatenate(chunks), np.full(6, 3.0))

    def test_stats_accumulate(self, rng):
        world = InProcessWorld(4)
        buffers = [rng.standard_normal(100).astype(np.float32) for _ in range(4)]
        world.allreduce(buffers)
        world.allreduce(buffers)
        assert world.stats.collective_counts["allreduce_ring"] == 2
        assert world.stats.simulated_time_s > 0
        assert world.stats.bytes_sent_per_rank > 0
        world.reset_stats()
        assert world.stats.simulated_time_s == 0.0
        assert world.stats.collective_counts == {}

    def test_logical_bytes_override_prices_wire_size(self, rng):
        # The A2SGD case: the simulated payload is 2 float64 (16 bytes) but the
        # wire encoding is 8 bytes; the recorded traffic must be 8 bytes.
        world = InProcessWorld(4)
        payloads = [np.array([0.5, 0.25]) for _ in range(4)]
        world.allreduce(payloads, logical_bytes=8.0)
        assert world.last_trace.message_bytes == pytest.approx(8.0)
        assert world.stats.logical_payload_bytes == pytest.approx(8.0)

    def test_simulated_time_reflects_message_size(self, rng):
        small_world = InProcessWorld(8)
        big_world = InProcessWorld(8)
        small = [np.zeros(2) for _ in range(8)]
        big = [np.zeros(500_000, dtype=np.float32) for _ in range(8)]
        small_world.allreduce(small)
        big_world.allreduce(big)
        assert big_world.simulated_comm_time > small_world.simulated_comm_time * 10

    def test_custom_network_model_changes_cost(self, rng):
        slow = InProcessWorld(4, network=NetworkModel(latency_s=1e-3, bandwidth_Bps=1e6))
        fast = InProcessWorld(4)
        payload = [np.zeros(1000, dtype=np.float32) for _ in range(4)]
        slow.allreduce(payload)
        fast.allreduce(payload)
        assert slow.simulated_comm_time > fast.simulated_comm_time

    def test_single_worker_world_costs_nothing(self):
        world = InProcessWorld(1)
        result = world.allreduce([np.array([1.0, 2.0])])
        np.testing.assert_allclose(result[0], [1.0, 2.0])
        assert world.simulated_comm_time == 0.0

class TestCollectiveOpMax:
    """CollectiveOp.MAX is supported end to end by the traced world."""

    def test_ring_allreduce_max(self, rng):
        P = 4
        world = InProcessWorld(P)
        buffers = [rng.standard_normal(37).astype(np.float32) for _ in range(P)]
        results = world.allreduce(buffers, CollectiveOp.MAX)
        expected = np.max(np.stack(buffers), axis=0)
        for r in range(P):
            np.testing.assert_allclose(results[r], expected, rtol=1e-6)

    def test_naive_allreduce_max(self, rng):
        world = InProcessWorld(3, use_ring_allreduce=False)
        buffers = [rng.standard_normal(11).astype(np.float32) for _ in range(3)]
        results = world.allreduce(buffers, CollectiveOp.MAX)
        np.testing.assert_array_equal(results[0], np.max(np.stack(buffers), axis=0))

    def test_max_is_traced_and_priced_like_sum(self, rng):
        """MAX moves the same bytes as SUM — the op changes arithmetic, not
        the collective's wire pattern."""
        buffers = [rng.standard_normal(256).astype(np.float32) for _ in range(4)]
        max_world = InProcessWorld(4)
        max_world.allreduce([b.copy() for b in buffers], CollectiveOp.MAX)
        sum_world = InProcessWorld(4)
        sum_world.allreduce([b.copy() for b in buffers], CollectiveOp.SUM)
        assert max_world.stats.bytes_sent_per_rank == sum_world.stats.bytes_sent_per_rank
        assert max_world.simulated_comm_time == sum_world.simulated_comm_time
        assert max_world.last_trace.kind == "allreduce_ring"

    def test_max_single_rank(self, rng):
        world = InProcessWorld(1)
        buffer = rng.standard_normal(9).astype(np.float32)
        np.testing.assert_allclose(world.allreduce([buffer], CollectiveOp.MAX)[0],
                                   buffer, rtol=1e-6)

