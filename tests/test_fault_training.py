"""Training under injected faults: graceful degradation for every strategy,
rejoin catch-up accounting, fault-timeline determinism, the bit-identical
``--fault-model none`` guarantee, mid-blackout checkpoint resume, the
``intermittent_dropout`` membership bridge and the fault columns of the
metrics CSV (tentpole: fault injection and graceful degradation)."""

import math

import numpy as np
import pytest

from repro.core import (DistributedTrainer, TrainerConfig, load_checkpoint,
                        save_checkpoint)
from repro.core.callbacks import Callback
from repro.core.flatten import flatten_parameters


class StopAfterEpoch(Callback):
    """Interrupt training after ``epochs`` completed epochs (mid-run stop)."""

    def __init__(self, epochs: int):
        self.epochs = int(epochs)

    def on_epoch_end(self, state) -> None:
        if state.epoch + 1 >= self.epochs:
            state.stop_requested = True


def make_config(**overrides) -> TrainerConfig:
    base = dict(model="fnn3", preset="tiny", algorithm="dense", world_size=4,
                epochs=2, batch_size=8, max_iterations_per_epoch=4,
                num_train=128, num_test=32, seed=0)
    base.update(overrides)
    return TrainerConfig(**base)


def make_trainer(stop_after: int = 0, **overrides) -> DistributedTrainer:
    callbacks = [StopAfterEpoch(stop_after)] if stop_after else None
    return DistributedTrainer(make_config(**overrides), callbacks=callbacks)


def final_params(trainer: DistributedTrainer) -> np.ndarray:
    return np.stack([flatten_parameters(m) for m in trainer.replicas])


STRATEGIES = {
    "allreduce": {},
    "trimmed_mean": {"sync": {"aggregator": "trimmed_mean",
                              "aggregator_kwargs": {"trim_ratio": 0.25}}},
    "local_sgd": {"sync": {"strategy": "local_sgd", "period": 2}},
    "gossip": {"sync": {"strategy": "gossip", "topology": "ring"}},
    "async_ps": {"sync": {"strategy": "async_ps"}},
    "easgd": {"sync": {"strategy": "easgd", "period": 2}},
}

FAULTS = {
    "crash": {"model": "crash_stop",
              "model_kwargs": {"ranks": [3], "at_s": 0.01}},
    "blackout": {"model": "transient_blackout",
                 "model_kwargs": {"mean_down_s": 0.02, "mean_up_s": 0.03}},
    "message_loss": {"model": "message_loss", "model_kwargs": {"p": 0.3}},
}


class TestGracefulDegradation:
    """Every strategy survives every fault schedule: the run completes (no
    deadlocked barrier), the final loss and parameters are finite, and the
    FaultReport accounts for what was injected."""

    @pytest.mark.parametrize("fault", sorted(FAULTS))
    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_run_completes_with_finite_state(self, strategy, fault):
        trainer = make_trainer(faults=FAULTS[fault], fault_seed=9,
                               **STRATEGIES[strategy])
        metrics = trainer.train()
        assert math.isfinite(metrics.train_loss[-1])
        assert np.all(np.isfinite(final_params(trainer)))
        report = trainer.fault_injector.report
        assert not report.empty
        if fault in ("crash", "blackout"):
            assert report.total_downtime_s > 0.0
            assert sum(report.down_transitions_per_rank) > 0
        else:
            assert report.dropped_messages > 0

    def test_crashed_rank_is_frozen_while_survivors_advance(self):
        trainer = make_trainer(faults={"model": "crash_stop",
                                       "model_kwargs": {"ranks": [3],
                                                        "at_s": 0.0}})
        initial = final_params(trainer)
        trainer.train()
        params = final_params(trainer)
        # Dead from t=0: rank 3 never takes a step and is excluded from the
        # final consolidation, so it still holds its initial parameters.
        np.testing.assert_array_equal(params[3], initial[3])
        assert not np.array_equal(params[0], params[3])
        # Survivors keep allreduce consensus among themselves.
        np.testing.assert_array_equal(params[0], params[1])
        np.testing.assert_array_equal(params[0], params[2])

    def test_blackout_rejoins_are_priced_resyncs(self):
        trainer = make_trainer(faults=FAULTS["blackout"], fault_seed=9,
                               epochs=3, **STRATEGIES["local_sgd"])
        trainer.train()
        report = trainer.fault_injector.report
        assert sum(report.rejoins_per_rank) > 0
        assert report.resyncs == sum(report.rejoins_per_rank)
        # Each catch-up ships the dense float32 parameter vector.
        expected = 4.0 * trainer.num_parameters * report.resyncs
        assert report.resync_bytes == pytest.approx(expected)
        assert report.barrier_timeouts > 0  # discoveries were priced too

    def test_lockstep_message_loss_prices_bounded_retransmits(self):
        trainer = make_trainer(faults=FAULTS["message_loss"], fault_seed=2)
        healthy = make_trainer()
        trainer.train()
        healthy.train()
        report = trainer.fault_injector.report
        assert report.dropped_messages > 0
        assert report.retries > 0
        # Retransmission costs time, never numerics: parameters match the
        # healthy run exactly while the simulated clock runs behind.
        np.testing.assert_array_equal(final_params(trainer),
                                      final_params(healthy))
        assert trainer.simulated_time_s > 0.0

    def test_async_ps_drops_lost_pushes(self):
        trainer = make_trainer(faults=FAULTS["message_loss"], fault_seed=2,
                               **STRATEGIES["async_ps"])
        trainer.train()
        report = trainer.fault_injector.report
        assert report.dropped_messages > 0

    def test_all_ranks_down_recoverable_world_idles_and_returns(self):
        # Aggressive churn: long blackouts, tiny up-phases — the whole world
        # is regularly down at once.  A recoverable model must idle to the
        # first rejoin instead of raising or deadlocking.
        trainer = make_trainer(
            epochs=1,
            faults={"model": "transient_blackout",
                    "model_kwargs": {"mean_down_s": 0.5, "mean_up_s": 0.01}},
            fault_seed=1)
        metrics = trainer.train()
        assert math.isfinite(metrics.train_loss[-1])
        report = trainer.fault_injector.report
        assert sum(report.rejoins_per_rank) > 0

    def test_permanent_all_crash_stops_the_run(self):
        trainer = make_trainer(
            faults={"model": "crash_stop",
                    "model_kwargs": {"ranks": [0, 1, 2, 3], "at_s": 0.01}})
        trainer.train()
        report = trainer.fault_injector.report
        assert sum(report.down_transitions_per_rank) == 4
        # The run ended early instead of deadlocking a collective over zero
        # participants.
        assert trainer.state.stop_requested


class TestFaultDeterminism:
    def test_same_fault_seed_reproduces_timeline_and_parameters(self):
        runs = []
        for _ in range(2):
            trainer = make_trainer(faults=FAULTS["blackout"], fault_seed=9,
                                   **STRATEGIES["local_sgd"])
            trainer.train()
            runs.append(trainer)
        first, second = runs
        assert first.fault_injector.report.as_dict() \
            == second.fault_injector.report.as_dict()
        np.testing.assert_array_equal(final_params(first),
                                      final_params(second))
        assert first.simulated_time_s == second.simulated_time_s

    def test_fault_timeline_is_world_size_invariant(self):
        # Per-rank schedule streams never involve world_size: rank r's
        # outage history under --seed-faults S is identical at P = 2, 4, 8.
        histories = {}
        for world_size in (2, 4, 8):
            trainer = make_trainer(world_size=world_size,
                                   faults=FAULTS["blackout"], fault_seed=9)
            injector = trainer.fault_injector
            grid = [k * 0.01 for k in range(500)]
            histories[world_size] = [
                [injector.down_interval(rank, t) for t in grid]
                for rank in range(2)]
        assert histories[2] == histories[4][:2] == histories[8][:2]

    @pytest.mark.parametrize("fused", [True, False], ids=["fused", "seed"])
    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_fault_model_none_is_bit_identical(self, strategy, fused):
        # The default fault configuration must not perturb a single bit of
        # the healthy trajectory, on either gradient path, for any strategy.
        base = dict(STRATEGIES[strategy], fused_pipeline=fused)
        healthy = make_trainer(**base)
        explicit = make_trainer(faults={"model": "none",
                                        "barrier_timeout_s": 0.5,
                                        "max_retries": 7},
                                fault_seed=123, **base)
        assert explicit.fault_injector is None
        healthy_metrics = healthy.train()
        explicit_metrics = explicit.train()
        np.testing.assert_array_equal(final_params(healthy),
                                      final_params(explicit))
        assert healthy_metrics.train_loss == explicit_metrics.train_loss


class TestCheckpointResumeMidBlackout:
    KW = dict(epochs=3, faults=FAULTS["blackout"], fault_seed=9)

    def test_resume_matches_uninterrupted_faulty_run(self, tmp_path):
        uninterrupted = make_trainer(**self.KW)
        uninterrupted.train()

        first_half = make_trainer(stop_after=1, **self.KW)
        first_half.train()
        # The checkpoint is taken mid-fault-history: membership, counters
        # and report state all have something to carry.
        assert not first_half.fault_injector.report.empty
        path = save_checkpoint(first_half, tmp_path / "ckpt.npz")

        resumed = make_trainer(**self.KW)
        load_checkpoint(resumed, path)
        resumed.train()

        np.testing.assert_array_equal(final_params(uninterrupted),
                                      final_params(resumed))
        assert resumed.fault_injector.report.as_dict() \
            == uninterrupted.fault_injector.report.as_dict()
        assert resumed.simulated_time_s == uninterrupted.simulated_time_s
        assert resumed.metrics.train_loss == uninterrupted.metrics.train_loss
        assert resumed.metrics.rejected_pushes \
            == uninterrupted.metrics.rejected_pushes
        assert resumed.metrics.mean_staleness \
            == uninterrupted.metrics.mean_staleness

    def test_fault_state_round_trips_through_checkpoint(self, tmp_path):
        trainer = make_trainer(stop_after=1, **self.KW)
        trainer.train()
        path = save_checkpoint(trainer, tmp_path / "ckpt.npz")

        fresh = make_trainer(**self.KW)
        load_checkpoint(fresh, path)
        original, restored = trainer.fault_injector, fresh.fault_injector
        np.testing.assert_array_equal(restored.membership.alive,
                                      original.membership.alive)
        np.testing.assert_array_equal(restored._message_counters,
                                      original._message_counters)
        np.testing.assert_array_equal(restored._stall_counters,
                                      original._stall_counters)
        np.testing.assert_array_equal(restored.needs_catchup,
                                      original.needs_catchup)
        assert restored.report.as_dict() == original.report.as_dict()

    def test_healthy_checkpoints_stay_loadable(self, tmp_path):
        # Backward compatibility: checkpoints written without a fault layer
        # restore into fault-configured trainers (and vice versa) without
        # touching what is absent.
        healthy = make_trainer(stop_after=1, epochs=3)
        healthy.train()
        path = save_checkpoint(healthy, tmp_path / "healthy.npz")
        faulty = make_trainer(**self.KW)
        load_checkpoint(faulty, path)
        assert faulty.fault_injector.membership.all_alive


class TestIntermittentDropoutBridge:
    CONFIG = dict(compute_model={"name": "intermittent_dropout",
                                 "compute_s": 0.01, "drop_prob": 0.5,
                                 "downtime_s": 0.2}, clock_seed=3)

    def test_dropped_ranks_become_absent(self):
        trainer = make_trainer(**self.CONFIG)
        # No fault model configured, yet the bridge forces an injector so
        # compute-model dropouts can flip membership.
        assert trainer.fault_injector is not None
        assert trainer.fault_injector.bridge_compute_stalls
        assert trainer.fault_injector.model is None
        metrics = trainer.train()
        assert math.isfinite(metrics.train_loss[-1])
        report = trainer.fault_injector.report
        # drop_prob=0.5 over 4 ranks × 8 iterations: absences are certain.
        assert sum(report.down_transitions_per_rank) > 0
        assert report.lost_steps > 0
        assert sum(report.rejoins_per_rank) > 0

    def test_slow_node_keeps_timing_only_semantics(self):
        # The legacy reading lives on as the slow_node fault model: stalls
        # price simulated time but numerics match the healthy run exactly.
        stalled = make_trainer(faults={"model": "slow_node",
                                       "model_kwargs": {"drop_prob": 0.5,
                                                        "downtime_s": 0.2}},
                               fault_seed=4)
        healthy = make_trainer(compute_model={"name": "constant"})
        stalled.train()
        healthy.train()
        assert stalled.fault_injector.membership.all_alive
        np.testing.assert_array_equal(final_params(stalled),
                                      final_params(healthy))
        assert stalled.simulated_time_s > healthy.simulated_time_s


class TestMetricsCSVFaultColumns:
    def test_csv_has_fault_columns_and_cumulative_rows(self, tmp_path):
        trainer = make_trainer(faults=FAULTS["message_loss"], fault_seed=2,
                               **STRATEGIES["async_ps"])
        trainer.train()
        path = trainer.metrics.to_csv(tmp_path / "metrics.csv")
        lines = path.read_text().strip().splitlines()
        header = lines[0].split(",")
        assert "rejected_pushes" in header and "mean_staleness" in header
        assert len(lines) - 1 == len(trainer.metrics.epochs)
        rejected_col = header.index("rejected_pushes")
        staleness_col = header.index("mean_staleness")
        rejected = [int(line.split(",")[rejected_col]) for line in lines[1:]]
        staleness = [float(line.split(",")[staleness_col]) for line in lines[1:]]
        # Columns are cumulative: non-decreasing, final row = run totals.
        assert rejected == sorted(rejected)
        assert rejected[-1] == trainer.sim_report.rejected_pushes
        assert staleness[-1] == pytest.approx(
            trainer.sim_report.mean_staleness())

    def test_lockstep_runs_report_zero_fault_columns(self, tmp_path):
        trainer = make_trainer()
        trainer.train()
        path = trainer.metrics.to_csv(tmp_path / "metrics.csv")
        lines = path.read_text().strip().splitlines()
        rejected_col = lines[0].split(",").index("rejected_pushes")
        assert all(row.split(",")[rejected_col] == "0" for row in lines[1:])

    def test_fault_report_rides_in_sim_report_dict(self):
        trainer = make_trainer(faults=FAULTS["crash"], fault_seed=0)
        trainer.train()
        payload = trainer.sim_report.as_dict()
        fault = payload["fault"]
        assert fault["model"] == "crash_stop"
        assert fault["total_downtime_s"] > 0.0
        assert fault["down_transitions_per_rank"][3] == 1
