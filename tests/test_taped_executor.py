"""Taped record/replay execution must be bit-identical to the eager batched path.

The tape records the stacked replica graph on the first iteration of each
input signature and replays a peephole-fused program afterwards, swapping only
the input/target (and carried BPTT state) buffers.  Every covered model family
is pinned with ``assert_array_equal`` — gradients, losses, BatchNorm running
buffers and carried LSTM state — across multiple "epochs" (iteration batches
with state restarts), so a replay that drifts by even one ULP fails loudly.
"""

import numpy as np
import pytest

from repro.core import DistributedTrainer, TrainerConfig, load_checkpoint, save_checkpoint
from repro.core.batched_replicas import (
    BatchedAutogradExecutor,
    BatchedLanguageModelExecutor,
    BatchedReplicaExecutor,
    TapedAutogradExecutor,
    TapedLanguageModelExecutor,
    TapedReplicaExecutor,
    build_replica_executor,
)
from repro.core.flat_buffer import WorldFlatBuffers
from repro.core.flatten import flatten_parameters
from repro.models.fnn import FNN3
from repro.models.lstm_lm import LSTMLanguageModel
from repro.models.resnet import ResNet
from repro.models.vgg import VGG16


def tiny_fnn():
    return FNN3(input_dim=12, hidden_dims=(9, 9, 9), num_classes=4, seed=3)


def tiny_resnet():
    return ResNet(blocks_per_stage=1, base_channels=(4, 8, 16), num_classes=10,
                  in_channels=3, seed=5)


def tiny_vgg():
    return VGG16(num_classes=10, in_channels=3, width_multiplier=0.0625,
                 image_size=32, seed=5)


def tiny_lstm(num_layers=2, dropout=0.0):
    return LSTMLanguageModel(vocab_size=31, embedding_dim=8, hidden_size=7,
                             num_layers=num_layers, dropout=dropout, seed=3)


def make_deltas(maker, P, rng):
    """Per-replica weight perturbations (same divergence for both worlds)."""
    template = maker()
    return [[(0.01 * (i + 1)) * rng.standard_normal(p.data.shape).astype(np.float32)
             for p in template.parameters()] for i in range(P)]


def build_world(maker, P, deltas):
    replicas = [maker() for _ in range(P)]
    for replica, per_param in zip(replicas, deltas):
        for param, delta in zip(replica.parameters(), per_param):
            param.data += delta
    return replicas, WorldFlatBuffers(replicas)


class TestTapedClassificationParity:
    """grad_matrix, losses and BN buffers must match the eager batched path
    exactly, over enough iterations that every one after the first is a
    replay."""

    def run_pair(self, maker, eager_cls, taped_cls, batches, P):
        rng = np.random.default_rng(99)
        deltas = make_deltas(maker, P, rng)
        eager_replicas, eager_world = build_world(maker, P, deltas)
        taped_replicas, taped_world = build_world(maker, P, deltas)
        eager = build_replica_executor(eager_replicas, eager_world, "classification")
        taped = build_replica_executor(taped_replicas, taped_world, "classification",
                                       taped=True)
        assert isinstance(eager, eager_cls) and not isinstance(eager, taped_cls)
        assert isinstance(taped, taped_cls)
        for inputs, targets in batches:
            eager_losses = eager.forward_backward(inputs, targets)
            taped_losses = taped.forward_backward(inputs, targets)
            np.testing.assert_array_equal(taped_world.grad_matrix,
                                          eager_world.grad_matrix)
            assert taped_losses == eager_losses
        for eager_replica, taped_replica in zip(eager_replicas, taped_replicas):
            for (name, eager_buf), (_, taped_buf) in zip(
                    eager_replica.named_buffers(), taped_replica.named_buffers()):
                np.testing.assert_array_equal(taped_buf, eager_buf, err_msg=name)
        return taped

    @pytest.mark.parametrize("P", [2, 4, 8])
    def test_fnn3_bit_identical(self, P):
        rng = np.random.default_rng(7)
        batches = [(rng.standard_normal((P, 6, 12)).astype(np.float32),
                    rng.integers(0, 4, size=(P, 6))) for _ in range(4)]
        taped = self.run_pair(tiny_fnn, BatchedReplicaExecutor,
                              TapedReplicaExecutor, batches, P)
        assert taped.tape_stats == {"recorded": 1, "replays": 3, "eager": 0}

    @pytest.mark.parametrize("P", [2, 4, 8])
    def test_resnet_bit_identical_including_bn_buffers(self, P):
        rng = np.random.default_rng(7)
        batches = [(rng.standard_normal((P, 4, 3, 8, 8)).astype(np.float32),
                    rng.integers(0, 10, size=(P, 4))) for _ in range(4)]
        taped = self.run_pair(tiny_resnet, BatchedAutogradExecutor,
                              TapedAutogradExecutor, batches, P)
        assert taped.tape_stats == {"recorded": 1, "replays": 3, "eager": 0}

    @pytest.mark.parametrize("P", [2, 4, 8])
    def test_vgg_bit_identical(self, P):
        rng = np.random.default_rng(7)
        batches = [(rng.standard_normal((P, 2, 3, 32, 32)).astype(np.float32),
                    rng.integers(0, 10, size=(P, 2))) for _ in range(3)]
        taped = self.run_pair(tiny_vgg, BatchedAutogradExecutor,
                              TapedAutogradExecutor, batches, P)
        assert taped.tape_stats == {"recorded": 1, "replays": 2, "eager": 0}

    def test_second_signature_records_second_tape(self):
        """A trailing partial batch (different shape) gets its own tape."""
        P = 2
        rng = np.random.default_rng(11)
        deltas = make_deltas(tiny_resnet, P, rng)
        eager_replicas, eager_world = build_world(tiny_resnet, P, deltas)
        taped_replicas, taped_world = build_world(tiny_resnet, P, deltas)
        eager = BatchedAutogradExecutor(eager_replicas, eager_world)
        taped = TapedAutogradExecutor(taped_replicas, taped_world)
        shapes = [(P, 4, 3, 8, 8), (P, 2, 3, 8, 8), (P, 4, 3, 8, 8), (P, 2, 3, 8, 8)]
        for shape in shapes:
            inputs = rng.standard_normal(shape).astype(np.float32)
            targets = rng.integers(0, 10, size=shape[:2])
            assert (taped.forward_backward(inputs, targets)
                    == eager.forward_backward(inputs, targets))
            np.testing.assert_array_equal(taped_world.grad_matrix,
                                          eager_world.grad_matrix)
        assert taped.tape_stats == {"recorded": 2, "replays": 2, "eager": 0}


class TestTapedLSTMParity:
    @pytest.mark.parametrize("P", [2, 4, 8])
    def test_carried_state_bit_identical_across_epochs(self, P):
        """Two epochs of two BPTT windows each: the replay must thread the
        carried (h, c) state and reset it at the epoch boundary exactly as
        the eager batched path does."""
        T, N = 4, 2
        rng = np.random.default_rng(21)
        deltas = make_deltas(tiny_lstm, P, rng)
        eager_replicas, eager_world = build_world(tiny_lstm, P, deltas)
        taped_replicas, taped_world = build_world(tiny_lstm, P, deltas)
        eager = build_replica_executor(eager_replicas, eager_world, "language_model")
        taped = build_replica_executor(taped_replicas, taped_world, "language_model",
                                       taped=True)
        assert isinstance(taped, TapedLanguageModelExecutor)
        windows = [(rng.integers(0, 31, size=(P, T, N)),
                    rng.integers(0, 31, size=(P, T, N))) for _ in range(2)]
        for _epoch in range(2):
            eager_state = taped_state = None
            for tokens, targets in windows:
                eager_losses, eager_state = eager.forward_backward(
                    tokens, targets, eager_state)
                taped_losses, taped_state = taped.forward_backward(
                    tokens, targets, taped_state)
                np.testing.assert_array_equal(taped_world.grad_matrix,
                                              eager_world.grad_matrix)
                assert taped_losses == eager_losses
                for (eh, ec), (th, tc) in zip(eager_state, taped_state):
                    np.testing.assert_array_equal(th.data, eh.data)
                    np.testing.assert_array_equal(tc.data, ec.data)
        # One tape serves both the fresh-state and carried-state iterations.
        assert taped.tape_stats == {"recorded": 1, "replays": 3, "eager": 0}

    def test_dropout_model_is_unsupported_like_eager(self):
        replicas = [tiny_lstm(dropout=0.5) for _ in range(2)]
        world = WorldFlatBuffers(replicas)
        assert build_replica_executor(replicas, world, "language_model",
                                      taped=True) is None


class TestTapedTrainerEquivalence:
    """End-to-end: taped=True must track taped=False (eager fused) bit for
    bit over full multi-epoch runs — compression, exchange and optimizer
    included."""

    MODELS = {
        "fnn3": dict(num_train=256, batch_size=16),
        "resnet20": dict(num_train=256),
        "vgg16": dict(num_train=64, batch_size=4, max_iterations_per_epoch=2),
        "lstm_ptb": dict(num_train=8000),
    }

    def run(self, model, taped, **overrides):
        base = dict(model=model, preset="tiny", algorithm="a2sgd", world_size=4,
                    epochs=2, max_iterations_per_epoch=3, num_test=64, seed=0,
                    fused_pipeline=True, taped=taped)
        base.update(overrides)
        trainer = DistributedTrainer(TrainerConfig(**base))
        metrics = trainer.train()
        params = np.stack([flatten_parameters(m) for m in trainer.replicas])
        return params, metrics, trainer

    @pytest.mark.parametrize("model", sorted(MODELS))
    def test_taped_training_is_bit_identical(self, model):
        overrides = self.MODELS[model]
        taped_params, taped_metrics, taped_trainer = self.run(model, True, **overrides)
        eager_params, eager_metrics, _ = self.run(model, False, **overrides)
        np.testing.assert_array_equal(taped_params, eager_params)
        assert taped_metrics.train_loss == eager_metrics.train_loss
        stats = getattr(taped_trainer.executor, "tape_stats", None)
        assert stats is not None and stats["replays"] > 0 and stats["eager"] == 0

    def test_taped_checkpoint_resume_stays_bit_identical(self, tmp_path):
        """Restoring a checkpoint into a taped trainer mid-stream (its tape
        already recorded, its buffers already warm) must continue exactly
        like the trainer that kept running: the replay reads parameters
        through the live flat-buffer views the checkpoint writes into."""
        def make():
            config = TrainerConfig(model="lstm_ptb", preset="tiny", algorithm="a2sgd",
                                   world_size=2, epochs=1, max_iterations_per_epoch=3,
                                   num_train=4000, num_test=64, seed=0,
                                   fused_pipeline=True, taped=True)
            return DistributedTrainer(config)

        original = make()
        original.train()
        path = save_checkpoint(original, tmp_path / "taped.npz")

        resumed = make()
        load_checkpoint(resumed, path)
        np.testing.assert_array_equal(
            np.stack([flatten_parameters(m) for m in resumed.replicas]),
            np.stack([flatten_parameters(m) for m in original.replicas]))

        # Continue both: the original replays its season-old tape against the
        # finalize-averaged parameters, the resumed one records afresh from
        # checkpoint state.  Identical state must give identical trajectories.
        original_metrics = original.train()
        resumed_metrics = resumed.train()
        np.testing.assert_array_equal(
            np.stack([flatten_parameters(m) for m in original.replicas]),
            np.stack([flatten_parameters(m) for m in resumed.replicas]))
        assert original_metrics.train_loss[-1] == resumed_metrics.train_loss[-1]
        assert isinstance(resumed.executor, TapedLanguageModelExecutor)
        assert resumed.executor.tape_stats["replays"] > 0

    def test_no_taped_flag_uses_eager_executor(self):
        _, _, trainer = self.run("resnet20", False, **self.MODELS["resnet20"])
        assert type(trainer.executor) is BatchedAutogradExecutor

    def test_taped_default_on(self):
        config = TrainerConfig(model="resnet20", preset="tiny", algorithm="a2sgd",
                               world_size=2, epochs=1, num_train=256, num_test=32)
        assert config.taped
        trainer = DistributedTrainer(config)
        assert isinstance(trainer.executor, TapedAutogradExecutor)
