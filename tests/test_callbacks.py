"""Tests for the pluggable trainer lifecycle (Callback protocol)."""

import math

import numpy as np
import pytest

from repro.core import DistributedTrainer, TrainerConfig
from repro.core.callbacks import (
    CALLBACKS,
    Callback,
    CallbackList,
    EarlyStoppingCallback,
    TrainState,
    resolve_callbacks,
)


def tiny_config(**overrides) -> TrainerConfig:
    base = dict(model="fnn3", preset="tiny", algorithm="a2sgd", world_size=2, epochs=2,
                seed=0, max_iterations_per_epoch=6, batch_size=16, num_train=256, num_test=64)
    base.update(overrides)
    return TrainerConfig(**base)


class RecordingCallback(Callback):
    """Counts every hook invocation and snapshots per-iteration state."""

    def __init__(self):
        self.counts = {name: 0 for name in
                       ("train_start", "epoch_start", "iteration_start",
                        "iteration_end", "epoch_end", "train_end")}
        self.losses = []
        self.lrs = []
        self.global_iterations = []

    def on_train_start(self, state):
        self.counts["train_start"] += 1

    def on_epoch_start(self, state):
        self.counts["epoch_start"] += 1

    def on_iteration_start(self, state):
        self.counts["iteration_start"] += 1

    def on_iteration_end(self, state):
        self.counts["iteration_end"] += 1
        self.losses.append(state.loss)
        self.lrs.append(state.lr)
        self.global_iterations.append(state.global_iteration)

    def on_epoch_end(self, state):
        self.counts["epoch_end"] += 1

    def on_train_end(self, state):
        self.counts["train_end"] += 1


class TestHookInvocation:
    """The acceptance claim: a user callback observes every iteration of a
    2-epoch run without modifying core/trainer.py."""

    @pytest.mark.parametrize("fused", [True, False], ids=["fused", "seed"])
    def test_every_iteration_observed(self, fused):
        recorder = RecordingCallback()
        trainer = DistributedTrainer(tiny_config(fused_pipeline=fused),
                                     callbacks=[recorder])
        trainer.train()
        assert recorder.counts["train_start"] == 1
        assert recorder.counts["train_end"] == 1
        assert recorder.counts["epoch_start"] == 2
        assert recorder.counts["epoch_end"] == 2
        assert recorder.counts["iteration_start"] == 12
        assert recorder.counts["iteration_end"] == 12
        assert recorder.global_iterations == list(range(1, 13))
        assert all(np.isfinite(loss) for loss in recorder.losses)
        assert all(lr > 0 for lr in recorder.lrs)

    @pytest.mark.parametrize("fused", [True, False], ids=["fused", "seed"])
    def test_language_model_path_fires_same_hooks(self, fused):
        recorder = RecordingCallback()
        config = TrainerConfig(model="lstm_ptb", preset="tiny", algorithm="a2sgd",
                               world_size=2, epochs=2, seed=0, max_iterations_per_epoch=3,
                               seq_len=8, num_train=3000, num_test=600,
                               fused_pipeline=fused)
        DistributedTrainer(config, callbacks=[recorder]).train()
        assert recorder.counts["iteration_end"] == 6
        assert recorder.counts["epoch_end"] == 2

    def test_callbacks_run_in_order_after_builtins(self):
        order = []

        class First(Callback):
            def on_epoch_end(self, state):
                # Built-in metrics callback has already recorded the epoch row.
                order.append(("first", len(state.metrics.epochs)))

        class Second(Callback):
            def on_epoch_end(self, state):
                order.append(("second", len(state.metrics.epochs)))

        trainer = DistributedTrainer(tiny_config(epochs=1), callbacks=[First(), Second()])
        trainer.train()
        assert order == [("first", 1), ("second", 1)]

    def test_metric_value_populated_before_user_hook(self):
        seen = []

        class Observer(Callback):
            def on_epoch_end(self, state):
                seen.append(state.metric_value)

        DistributedTrainer(tiny_config(epochs=2), callbacks=[Observer()]).train()
        assert len(seen) == 2
        assert all(0.0 <= value <= 100.0 for value in seen)

    def test_state_exposes_trainer_views(self):
        checked = []

        class Inspect(Callback):
            def on_iteration_end(self, state):
                assert len(state.replicas) == state.world_size == 2
                assert state.flat_buffers is state.trainer.flat_world
                assert state.synchronizer is state.trainer.synchronizer
                assert state.report is not None
                checked.append(True)

        DistributedTrainer(tiny_config(epochs=1), callbacks=[Inspect()]).train()
        assert checked

    def test_results_identical_with_and_without_observer(self):
        plain = DistributedTrainer(tiny_config()).train()
        observed = DistributedTrainer(tiny_config(),
                                      callbacks=[RecordingCallback()]).train()
        assert plain.metric == observed.metric
        assert plain.train_loss == observed.train_loss


class TestEvaluationCadence:
    def test_eval_every_two_carries_metric_forward(self):
        trainer = DistributedTrainer(tiny_config(epochs=3, eval_every=2))
        metrics = trainer.train()
        # Epoch 0: carried (NaN history -> evaluated only on cadence); epochs
        # are recorded either way and the last epoch always evaluates.
        assert len(metrics.metric) == 3
        assert math.isnan(metrics.metric[0])
        assert metrics.metric[1] == metrics.metric[1]  # evaluated (not NaN)
        assert not math.isnan(metrics.metric[-1])


class TestStopRequest:
    def test_early_stopping_callback_stops_training(self):
        class AlwaysWorse(Callback):
            # Force the metric to look stale by zeroing it after recording.
            def on_epoch_end(self, state):
                state.metric_value = 10.0

        stopper = EarlyStoppingCallback(patience=1)
        trainer = DistributedTrainer(tiny_config(epochs=10, max_iterations_per_epoch=2),
                                     callbacks=[AlwaysWorse(), stopper])
        metrics = trainer.train()
        # First epoch sets the best; the second is no improvement -> stop.
        assert len(metrics.epochs) < 10

    def test_iteration_level_stop_breaks_epoch(self):
        class StopAtThree(Callback):
            def on_iteration_end(self, state):
                if state.global_iteration == 3:
                    state.request_stop()

        trainer = DistributedTrainer(tiny_config(epochs=5), callbacks=[StopAtThree()])
        trainer.train()
        assert trainer.timeline.iterations == 3
        # The partial epoch is still recorded and the replicas still sync.
        assert len(trainer.metrics.epochs) == 1


class TestStragglerStyleInjection:
    def test_gradient_perturbation_changes_training(self):
        class GradientNoise(Callback):
            """Worker-0 noise injection through the TrainState view."""

            def on_iteration_start(self, state):
                rng = np.random.default_rng(state.global_iteration)
                if state.flat_buffers is not None:
                    state.flat_buffers.param_matrix[0] += \
                        rng.standard_normal(state.flat_buffers.param_matrix.shape[1]) * 1e-3

        clean = DistributedTrainer(tiny_config()).train()
        noisy = DistributedTrainer(tiny_config(), callbacks=[GradientNoise()]).train()
        assert clean.train_loss != noisy.train_loss


class TestResolveCallbacks:
    def test_accepts_instances_names_and_dicts(self):
        instance = RecordingCallback()
        resolved = resolve_callbacks([instance, "progress",
                                      {"name": "early_stopping", "patience": 2}])
        assert resolved[0] is instance
        assert type(resolved[1]).__name__ == "ProgressCallback"
        assert resolved[2].patience == 2

    def test_unknown_name_raises_with_options(self):
        with pytest.raises(KeyError, match="unknown callback"):
            resolve_callbacks(["does_not_exist"])

    def test_dict_without_name_key(self):
        with pytest.raises(ValueError, match="missing the 'name' key"):
            resolve_callbacks([{"patience": 2}])

    def test_non_callback_rejected(self):
        with pytest.raises(TypeError):
            resolve_callbacks([42])

    def test_callback_list_type_checks(self):
        with pytest.raises(TypeError):
            CallbackList([object()])


class TestCheckpointCallback:
    def test_periodic_checkpoints_written(self, tmp_path):
        path = tmp_path / "ck.npz"
        trainer = DistributedTrainer(
            tiny_config(epochs=2),
            callbacks=[{"name": "checkpoint", "path": str(path), "every_epochs": 1}])
        trainer.train()
        assert path.exists()

    def test_registry_has_descriptions(self):
        descriptions = CALLBACKS.describe()
        assert all(descriptions[name] for name in ("progress", "checkpoint",
                                                   "early_stopping"))
