"""Tests for the Module/Parameter infrastructure."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor


def build_small_mlp() -> nn.Module:
    return nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))


class TestParameterRegistration:
    def test_parameters_registered_in_order(self):
        layer = nn.Linear(3, 2)
        names = [name for name, _ in layer.named_parameters()]
        assert names == ["weight", "bias"]

    def test_nested_module_names(self):
        model = build_small_mlp()
        names = [name for name, _ in model.named_parameters()]
        assert names == ["0.weight", "0.bias", "2.weight", "2.bias"]

    def test_num_parameters(self):
        model = build_small_mlp()
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_parameters_are_parameter_instances(self):
        for p in build_small_mlp().parameters():
            assert isinstance(p, nn.Parameter)
            assert p.requires_grad

    def test_buffers_not_in_parameters(self):
        bn = nn.BatchNorm1d(4)
        param_names = {name for name, _ in bn.named_parameters()}
        assert param_names == {"weight", "bias"}
        buffer_names = {name for name, _ in bn.named_buffers()}
        assert buffer_names == {"running_mean", "running_var"}

    def test_modules_iteration(self):
        model = build_small_mlp()
        kinds = [type(m).__name__ for m in model.modules()]
        assert kinds[0] == "Sequential"
        assert "Linear" in kinds and "ReLU" in kinds


class TestModuleState:
    def test_zero_grad_clears_all(self):
        model = build_small_mlp()
        out = model(Tensor(np.ones((2, 4), dtype=np.float32)))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_train_eval_recursive(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.Dropout(0.5))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_state_dict_roundtrip(self):
        model_a = build_small_mlp()
        model_b = build_small_mlp()
        # Perturb B so the load is observable.
        for p in model_b.parameters():
            p.data += 1.0
        model_b.load_state_dict(model_a.state_dict())
        for pa, pb in zip(model_a.parameters(), model_b.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_state_dict_returns_copies(self):
        model = build_small_mlp()
        state = model.state_dict()
        state["0.weight"][...] = 99.0
        assert not np.allclose(model.parameters()[0].data, 99.0)

    def test_load_state_dict_shape_mismatch(self):
        model = build_small_mlp()
        state = model.state_dict()
        state["0.weight"] = np.zeros((1, 1), dtype=np.float32)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_load_state_dict_unknown_key(self):
        model = build_small_mlp()
        with pytest.raises(KeyError):
            model.load_state_dict({"nonexistent": np.zeros(1)})

    def test_batchnorm_buffer_roundtrip(self):
        bn_a = nn.BatchNorm1d(3)
        bn_a(Tensor(np.random.default_rng(0).standard_normal((8, 3)).astype(np.float32)))
        state = bn_a.state_dict()
        bn_b = nn.BatchNorm1d(3)
        bn_b.load_state_dict(state)
        np.testing.assert_allclose(bn_b._buffers["running_mean"], bn_a._buffers["running_mean"])


class TestSequential:
    def test_forward_chains_layers(self):
        model = build_small_mlp()
        out = model(Tensor(np.ones((3, 4), dtype=np.float32)))
        assert out.shape == (3, 2)

    def test_len_getitem_iter(self):
        model = build_small_mlp()
        assert len(model) == 3
        assert isinstance(model[0], nn.Linear)
        assert [type(m).__name__ for m in model] == ["Linear", "ReLU", "Linear"]

    def test_append(self):
        model = nn.Sequential(nn.Linear(2, 2))
        model.append(nn.ReLU())
        assert len(model) == 2
        assert len(model.parameters()) == 2
