"""Unit tests for the tape layer: record once, replay bit-identically.

The executor-level guarantees live in ``test_taped_executor.py``; these tests
pin the tape machinery itself — recording, peephole fusion, view handling,
invalidation on data-dependent ops, effects, and the replayer's contract.
"""

import numpy as np
import pytest

from repro.tensor import Tensor, functional as F
from repro.tensor.tape import Tape, TapeReplayer, recording
from repro.tensor.tensor import (
    active_tape,
    invalidate_active_tape,
    record_tape_effect,
    set_active_tape,
)


def eager_mlp(W, Bv, x):
    """Reference eager forward/backward for the little graph under test."""
    w, b = Tensor(W.copy(), requires_grad=True), Tensor(Bv.copy(), requires_grad=True)
    h = (Tensor(x.copy()).matmul(w) + b).relu()
    loss = (h * h).sum()
    loss.backward()
    return float(loss.data), w.grad.copy(), b.grad.copy()


class TestRecordReplay:
    def test_replay_is_bit_identical_to_eager_recompute(self):
        rng = np.random.default_rng(0)
        W = rng.standard_normal((12, 8)).astype(np.float32)
        Bv = rng.standard_normal((8,)).astype(np.float32)
        inputs = [rng.standard_normal((5, 12)).astype(np.float32) for _ in range(3)]

        input_buf = np.array(inputs[0])
        w, b = Tensor(W.copy(), requires_grad=True), Tensor(Bv.copy(), requires_grad=True)
        tape = Tape()
        with recording(tape):
            h = (Tensor(input_buf).matmul(w) + b).relu()
            loss = (h * h).sum()
            loss.backward()
        assert tape.valid
        replayer = TapeReplayer(tape, loss)

        expected = eager_mlp(W, Bv, inputs[0])
        assert float(loss.data) == expected[0]
        np.testing.assert_array_equal(w.grad, expected[1])
        np.testing.assert_array_equal(b.grad, expected[2])

        for x in inputs[1:]:
            w.grad = b.grad = None
            np.copyto(input_buf, x)
            out = replayer.replay()
            expected = eager_mlp(W, Bv, x)
            assert float(out) == expected[0]
            np.testing.assert_array_equal(w.grad, expected[1])
            np.testing.assert_array_equal(b.grad, expected[2])

    def test_recording_does_not_change_eager_results(self):
        rng = np.random.default_rng(3)
        W = rng.standard_normal((6, 4)).astype(np.float32)
        Bv = rng.standard_normal((4,)).astype(np.float32)
        x = rng.standard_normal((3, 6)).astype(np.float32)
        plain = eager_mlp(W, Bv, x)
        with recording(Tape()):
            recorded = eager_mlp(W, Bv, x)
        assert plain[0] == recorded[0]
        np.testing.assert_array_equal(plain[1], recorded[1])
        np.testing.assert_array_equal(plain[2], recorded[2])

    def test_elementwise_chains_are_fused(self):
        x = Tensor(np.linspace(-1, 1, 8, dtype=np.float32), requires_grad=True)
        tape = Tape()
        with recording(tape):
            loss = ((x * 2.0 + 1.0).tanh() * x).sum()
            loss.backward()
        replayer = TapeReplayer(tape, loss)
        # mul, add, tanh, mul are adjacent "ew" steps: one fused chain, and
        # the program is shorter than the recorded op count.
        assert replayer.stats["fused_chains"] >= 1
        assert replayer.stats["replay_steps"] < replayer.stats["recorded_ops"]

    def test_view_ops_do_not_emit_replay_steps(self):
        x = Tensor(np.arange(12, dtype=np.float32), requires_grad=True)
        tape = Tape()
        with recording(tape):
            loss = x.reshape(3, 4).transpose((1, 0)).sum()
            loss.backward()
        assert tape.valid
        assert tape.view_ops == 2

    def test_effects_run_on_every_replay(self):
        calls = []
        x_buf = np.ones(4, dtype=np.float32)
        tape = Tape()
        with recording(tape):
            loss = (Tensor(x_buf, requires_grad=True) * 2.0).sum()
            record_tape_effect(lambda: calls.append(len(calls)))
            loss.backward()
        replayer = TapeReplayer(tape, loss)
        replayer.replay()
        replayer.replay()
        assert calls == [0, 1]


class TestInvalidation:
    @pytest.mark.parametrize("build", [
        lambda x: (x > 0.0).sum(),                        # comparison
        lambda x: F.softmax(x).sum(),                     # reduction w/o rule
        lambda x: F.dropout(x, 0.5, np.random.default_rng(0)).sum(),  # stochastic mask
        lambda x: Tensor.where(x.data > 0, x, x * 2.0).sum(),
    ], ids=["comparison", "softmax", "dropout", "where"])
    def test_data_dependent_ops_invalidate(self, build):
        tape = Tape()
        with recording(tape):
            build(Tensor(np.linspace(-1, 1, 8, dtype=np.float32)))
        assert not tape.valid
        assert tape.invalid_reason

    def test_invalid_tape_refuses_replayer(self):
        tape = Tape()
        with recording(tape):
            x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
            invalidate_active_tape("test reason")
            loss = (x * 2.0).sum()
            loss.backward()
        with pytest.raises(ValueError, match="test reason"):
            TapeReplayer(tape, loss)

    def test_first_invalidation_reason_is_kept(self):
        tape = Tape()
        tape.invalidate("first")
        tape.invalidate("second")
        assert tape.invalid_reason == "first"


class TestActiveTapePlumbing:
    def test_recording_restores_previous_tape(self):
        assert active_tape() is None
        outer = Tape()
        with recording(outer):
            assert active_tape() is outer
            with recording(Tape()):
                assert active_tape() is not outer
            assert active_tape() is outer
        assert active_tape() is None

    def test_set_active_tape_returns_previous(self):
        tape = Tape()
        assert set_active_tape(tape) is None
        assert set_active_tape(None) is tape

    def test_invalidate_without_active_tape_is_noop(self):
        invalidate_active_tape("nobody listening")   # must not raise

    def test_seed_grad_shape_is_checked(self):
        tape = Tape()
        with recording(tape):
            loss = (Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True) * 2.0).sum(axis=1)
            loss.backward(np.ones(2, dtype=np.float32))
        with pytest.raises(ValueError):
            TapeReplayer(tape, loss, seed_grad=np.ones(5, dtype=np.float32))
