"""Tests for the gradient synchronizer (Algorithm 1 lines 3–6, all algorithms)."""

import numpy as np
import pytest

from repro.comm import InProcessWorld
from repro.compress import get_compressor
from repro.core import GradientSynchronizer


def make_sync(algorithm: str, world_size: int = 4, **kwargs):
    world = InProcessWorld(world_size)
    compressors = [get_compressor(algorithm, **kwargs) for _ in range(world_size)]
    return GradientSynchronizer(world, compressors), world


def make_gradients(rng, world_size=4, n=2000, scale=0.01):
    return [(rng.standard_normal(n) * scale).astype(np.float32) for _ in range(world_size)]


class TestConstruction:
    def test_requires_one_compressor_per_rank(self):
        world = InProcessWorld(4)
        with pytest.raises(ValueError):
            GradientSynchronizer(world, [get_compressor("dense")] * 3)

    def test_rejects_shared_instances(self):
        world = InProcessWorld(2)
        shared = get_compressor("a2sgd")
        with pytest.raises(ValueError):
            GradientSynchronizer(world, [shared, shared])

    def test_rejects_mixed_algorithms(self):
        world = InProcessWorld(2)
        with pytest.raises(ValueError):
            GradientSynchronizer(world, [get_compressor("dense"), get_compressor("a2sgd")])

    def test_algorithm_property(self):
        sync, _ = make_sync("a2sgd", 2)
        assert sync.algorithm == "a2sgd"


class TestExchangeSemantics:
    def test_dense_exchange_returns_exact_average(self, rng):
        sync, _ = make_sync("dense")
        gradients = make_gradients(rng)
        new_gradients, report = sync.exchange(gradients)
        expected = np.mean(np.stack(gradients), axis=0)
        for g in new_gradients:
            np.testing.assert_allclose(g, expected, rtol=1e-4, atol=1e-6)
        assert report.exchange == "allreduce"

    def test_a2sgd_exchange_uses_global_means_and_local_errors(self, rng):
        sync, _ = make_sync("a2sgd")
        gradients = make_gradients(rng)
        new_gradients, report = sync.exchange(gradients)
        assert report.exchange == "allreduce"
        assert report.wire_bits_per_worker == 64.0
        # Workers get different gradients (their own error vectors)…
        assert not np.allclose(new_gradients[0], new_gradients[1])
        # …but the across-worker mean tracks the dense average.
        dense_avg = np.mean(np.stack(gradients), axis=0)
        a2sgd_avg = np.mean(np.stack(new_gradients), axis=0)
        gap = np.linalg.norm(a2sgd_avg - dense_avg) / np.linalg.norm(dense_avg)
        assert gap < 0.35

    def test_topk_exchange_uses_allgather(self, rng):
        sync, world = make_sync("topk", world_size=3, ratio=0.01)
        gradients = make_gradients(rng, world_size=3)
        new_gradients, report = sync.exchange(gradients)
        assert report.exchange == "allgather"
        assert "allgather" in world.stats.collective_counts
        # All workers apply the same averaged sparse gradient.
        np.testing.assert_allclose(new_gradients[0], new_gradients[1], atol=1e-7)

    def test_qsgd_exchange_shapes(self, rng):
        sync, _ = make_sync("qsgd", world_size=2)
        gradients = make_gradients(rng, world_size=2, n=500)
        new_gradients, report = sync.exchange(gradients)
        assert new_gradients[0].shape == (500,)
        assert report.wire_bits_per_worker == pytest.approx(2.8 * 500 + 32)

    def test_gradient_count_must_match_world(self, rng):
        sync, _ = make_sync("dense", world_size=4)
        with pytest.raises(ValueError):
            sync.exchange(make_gradients(rng, world_size=3))

    def test_gradient_lengths_must_match(self, rng):
        sync, _ = make_sync("dense", world_size=2)
        with pytest.raises(ValueError):
            sync.exchange([np.zeros(10, dtype=np.float32), np.zeros(11, dtype=np.float32)])


class TestAccounting:
    def test_a2sgd_comm_time_far_below_dense(self, rng):
        sync_dense, world_dense = make_sync("dense", world_size=8)
        sync_a2sgd, world_a2sgd = make_sync("a2sgd", world_size=8)
        gradients = make_gradients(rng, world_size=8, n=2_000_000)
        sync_dense.exchange(gradients)
        sync_a2sgd.exchange(gradients)
        assert world_a2sgd.simulated_comm_time < world_dense.simulated_comm_time / 100

    def test_wire_bits_reported_per_algorithm(self, rng):
        n = 10_000
        gradients = make_gradients(rng, world_size=2, n=n)
        for name, expected in [("dense", 32 * n), ("a2sgd", 64),
                               ("topk", 32 * max(1, round(0.001 * n))),
                               ("qsgd", 2.8 * n + 32)]:
            sync, _ = make_sync(name, world_size=2)
            _, report = sync.exchange(gradients)
            assert report.wire_bits_per_worker == pytest.approx(expected), name

    def test_compression_time_positive(self, rng):
        sync, _ = make_sync("topk", world_size=2, ratio=0.01)
        _, report = sync.exchange(make_gradients(rng, world_size=2))
        assert report.compression_time_s > 0

    def test_dense_model_average(self, rng):
        sync, _ = make_sync("a2sgd", world_size=3)
        params = [np.full(10, float(r), dtype=np.float32) for r in range(3)]
        averaged = sync.dense_model_average(params)
        for result in averaged:
            np.testing.assert_allclose(result, np.ones(10), rtol=1e-6)


class TestBatchedExchange:
    @pytest.mark.parametrize("algorithm,kwargs", [
        ("dense", {}), ("a2sgd", {}), ("topk", {"ratio": 0.05}),
        ("randk", {"ratio": 0.05}), ("gaussiank", {"ratio": 0.05}),
        ("dgc", {"ratio": 0.05}), ("qsgd", {}),
    ])
    def test_exchange_batched_matches_loop(self, rng, algorithm, kwargs):
        """End-to-end through the world: matrix path ≡ per-rank loop path."""
        sync_loop, _ = make_sync(algorithm, world_size=4, **kwargs)
        sync_batch, _ = make_sync(algorithm, world_size=4, **kwargs)
        # Align the per-rank RNG streams of stochastic compressors.
        for rank, (a, b) in enumerate(zip(sync_loop.compressors, sync_batch.compressors)):
            if hasattr(a, "rng"):
                a.rng = np.random.default_rng(50 + rank)
                b.rng = np.random.default_rng(50 + rank)
        for _ in range(3):
            gradients = make_gradients(rng, world_size=4, n=600)
            G = np.stack(gradients)
            looped, report_loop = sync_loop.exchange([g.copy() for g in gradients])
            batched, report_batch = sync_batch.exchange_batched(G)
            np.testing.assert_array_equal(np.stack(looped), np.asarray(batched))
            assert report_loop.exchange == report_batch.exchange
            assert report_loop.wire_bits_per_worker == report_batch.wire_bits_per_worker

    def test_exchange_batched_validates_shape(self, rng):
        sync, _ = make_sync("dense", world_size=3)
        with pytest.raises(ValueError):
            sync.exchange_batched(np.zeros((2, 10), dtype=np.float32))
        with pytest.raises(ValueError):
            sync.exchange_batched(np.zeros(10, dtype=np.float32))

    def test_exchange_batched_reports_positive_kernel_time(self, rng):
        sync, _ = make_sync("a2sgd", world_size=2)
        _, report = sync.exchange_batched(np.stack(make_gradients(rng, world_size=2)))
        assert report.compression_time_s > 0


class TestErrorFeedbackAcrossIterations:
    def test_topk_error_feedback_transmits_everything_eventually(self, rng):
        # Over many iterations the sum of applied updates approaches the sum
        # of the raw gradients (nothing is permanently lost).
        sync, _ = make_sync("topk", world_size=2, ratio=0.05)
        total_applied = np.zeros(400)
        total_raw = np.zeros(400)
        for _ in range(60):
            gradients = make_gradients(rng, world_size=2, n=400)
            new_gradients, _ = sync.exchange(gradients)
            total_applied += new_gradients[0]
            total_raw += np.mean(np.stack(gradients), axis=0)
        gap = np.linalg.norm(total_applied - total_raw) / np.linalg.norm(total_raw)
        assert gap < 0.6
