"""Tests for the utility modules: RNG, timers, serialization, logging."""

import json
import time

import numpy as np
import pytest

from repro.utils import (
    SeedSequenceFactory,
    Timer,
    derive_seed,
    get_logger,
    load_json,
    new_rng,
    save_json,
    set_global_seed,
    timed,
    to_jsonable,
)
from repro.utils.rng import get_global_seed, interleave_seeds
from repro.utils.timer import ManualClock, median_time


class TestRNG:
    def test_derive_seed_deterministic(self):
        assert derive_seed("a", 1, base=42) == derive_seed("a", 1, base=42)

    def test_derive_seed_sensitive_to_components(self):
        assert derive_seed("a", base=42) != derive_seed("b", base=42)
        assert derive_seed("a", base=42) != derive_seed("a", base=43)

    def test_derive_seed_in_63_bit_range(self):
        seed = derive_seed("anything", 123)
        assert 0 <= seed < 2**63

    def test_new_rng_reproducible(self):
        a = new_rng("x", seed=7).standard_normal(5)
        b = new_rng("x", seed=7).standard_normal(5)
        np.testing.assert_array_equal(a, b)

    def test_global_seed_roundtrip(self):
        original = get_global_seed()
        try:
            set_global_seed(99)
            assert get_global_seed() == 99
            a = new_rng("y").standard_normal(3)
            set_global_seed(100)
            b = new_rng("y").standard_normal(3)
            assert not np.array_equal(a, b)
        finally:
            set_global_seed(original)

    def test_factory_worker_streams_independent(self):
        factory = SeedSequenceFactory(3)
        s0 = factory.for_worker(0, "batch").standard_normal(4)
        s1 = factory.for_worker(1, "batch").standard_normal(4)
        assert not np.array_equal(s0, s1)

    def test_factory_worker_stream_reproducible(self):
        a = SeedSequenceFactory(3).for_worker(2, "batch").standard_normal(4)
        b = SeedSequenceFactory(3).for_worker(2, "batch").standard_normal(4)
        np.testing.assert_array_equal(a, b)

    def test_factory_spawn_changes_streams(self):
        base = SeedSequenceFactory(3)
        child = base.spawn("child")
        assert base.for_purpose("x").standard_normal(1) != child.for_purpose("x").standard_normal(1)

    def test_factory_worker_seeds_and_permutation(self):
        factory = SeedSequenceFactory(1)
        seeds = factory.worker_seeds(4)
        assert len(seeds) == len(set(seeds)) == 4
        perm = factory.permutation(10)
        assert sorted(perm) == list(range(10))

    def test_interleave_seeds_order_sensitive(self):
        assert interleave_seeds([1, 2]) != interleave_seeds([2, 1])


class TestTimer:
    def test_measure_accumulates(self):
        timer = Timer()
        with timer.measure("block"):
            pass
        with timer.measure("block"):
            pass
        assert timer.count("block") == 2
        assert timer.total("block") >= 0.0
        assert timer.mean("block") == pytest.approx(timer.total("block") / 2)

    def test_manual_clock(self):
        clock = ManualClock()
        timer = Timer(clock=clock)
        with timer.measure("step"):
            clock.advance(1.5)
        assert timer.total("step") == pytest.approx(1.5)
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_reset_and_as_dict(self):
        timer = Timer()
        timer.add("x", 2.0)
        assert timer.as_dict() == {"x": 2.0}
        timer.reset()
        assert timer.total("x") == 0.0

    def test_timed_returns_result_and_time(self):
        result, seconds = timed(lambda a, b: a + b, 2, 3, repeats=2)
        assert result == 5
        assert seconds >= 0.0

    def test_timed_requires_positive_repeats(self):
        with pytest.raises(ValueError):
            timed(lambda: None, repeats=0)

    def test_median_time_positive(self):
        assert median_time(lambda: sum(range(100)), repeats=3) >= 0.0


class TestSerialization:
    def test_to_jsonable_handles_numpy_types(self):
        payload = {"a": np.int64(3), "b": np.float32(1.5), "c": np.arange(3),
                   "d": np.bool_(True), "e": [np.float64(2.0)], "f": (1, 2)}
        out = to_jsonable(payload)
        assert out == {"a": 3, "b": 1.5, "c": [0, 1, 2], "d": True, "e": [2.0], "f": [1, 2]}
        json.dumps(out)

    def test_to_jsonable_handles_dataclasses(self):
        from repro.core.timeline import SyncReport
        out = to_jsonable(SyncReport(compression_time_s=1.0))
        assert out["compression_time_s"] == 1.0

    def test_to_jsonable_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            to_jsonable(object())

    def test_save_and_load_roundtrip(self, tmp_path):
        data = {"numbers": np.array([1.0, 2.0]), "nested": {"x": np.int32(7)}}
        path = save_json(data, tmp_path / "sub" / "data.json")
        assert path.exists()
        loaded = load_json(path)
        assert loaded == {"numbers": [1.0, 2.0], "nested": {"x": 7}}


class TestLogging:
    def test_get_logger_idempotent(self):
        a = get_logger("repro.test")
        b = get_logger("repro.test")
        assert a is b
        root = get_logger()
        assert len(root.handlers) <= 1 or root.name == "repro"
