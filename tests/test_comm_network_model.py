"""Tests for the α–β network model and cluster topology."""

import math

import numpy as np
import pytest

from repro.comm import (
    CollectiveTimeModel,
    NetworkModel,
    ethernet_10gbps,
    infiniband_100gbps,
)
from repro.comm.topology import ClusterTopology, NodeSpec, paper_testbed


class TestNetworkModel:
    def test_point_to_point_formula(self):
        model = NetworkModel(latency_s=1e-6, bandwidth_Bps=1e9)
        assert model.point_to_point(1e6) == pytest.approx(1e-6 + 1e-3)

    def test_zero_bytes_costs_latency_only(self):
        model = NetworkModel(latency_s=5e-6, bandwidth_Bps=1e9)
        assert model.point_to_point(0) == pytest.approx(5e-6)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel(latency_s=-1e-6, bandwidth_Bps=1e9)
        with pytest.raises(ValueError):
            NetworkModel(latency_s=1e-6, bandwidth_Bps=0)

    def test_presets(self):
        ib = infiniband_100gbps()
        eth = ethernet_10gbps()
        assert ib.bandwidth_Bps == pytest.approx(12.5e9)
        assert eth.bandwidth_Bps < ib.bandwidth_Bps
        assert eth.latency_s > ib.latency_s


class TestCollectiveTimeModel:
    @pytest.fixture
    def model(self):
        return CollectiveTimeModel(infiniband_100gbps())

    def test_single_rank_is_free(self, model):
        assert model.allreduce_ring(1e6, 1) == 0.0
        assert model.allgather(1e6, 1) == 0.0
        assert model.broadcast(1e6, 1) == 0.0
        assert model.reduce_scatter(1e6, 1) == 0.0

    def test_ring_allreduce_formula(self, model):
        p, m = 8, 1e6
        expected = 2 * (p - 1) * (model.network.latency_s + (m / p) / model.network.bandwidth_Bps)
        assert model.allreduce_ring(m, p) == pytest.approx(expected)

    def test_recursive_doubling_formula(self, model):
        p, m = 8, 8.0
        expected = 3 * (model.network.latency_s + m / model.network.bandwidth_Bps)
        assert model.allreduce_recursive_doubling(m, p) == pytest.approx(expected)

    def test_allreduce_dispatch_small_vs_large(self, model):
        small = model.allreduce(8.0, 8)
        assert small == pytest.approx(model.allreduce_recursive_doubling(8.0, 8))
        large = model.allreduce(1e8, 8)
        assert large == pytest.approx(model.allreduce_ring(1e8, 8))

    def test_a2sgd_message_is_latency_bound(self, model):
        # The 8-byte A2SGD exchange should be microseconds even at 16 workers.
        assert model.allreduce(8.0, 16) < 1e-4

    def test_dense_lstm_exchange_is_bandwidth_bound(self, model):
        # 66M float32 gradients = 264 MB; a ring allreduce moves ~2x that.
        time_s = model.allreduce(264e6, 16)
        assert 0.01 < time_s < 1.0

    def test_allreduce_time_grows_with_world_size(self, model):
        times = [model.allreduce_ring(1e7, p) for p in (2, 4, 8, 16)]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_allgather_linear_in_world_size(self, model):
        t4 = model.allgather(1e6, 4)
        t8 = model.allgather(1e6, 8)
        assert t8 > t4
        assert t8 / t4 == pytest.approx(7 / 3, rel=1e-6)

    def test_broadcast_log_rounds(self, model):
        t = model.broadcast(1e6, 16)
        single = model.network.point_to_point(1e6)
        assert t == pytest.approx(4 * single)

    def test_collective_time_dispatch(self, model):
        assert model.collective_time("allgather", 100.0, 4) == pytest.approx(
            model.allgather(100.0, 4))
        with pytest.raises(KeyError):
            model.collective_time("alltoall", 100.0, 4)


class TestTopology:
    def test_paper_testbed_matches_section_4_1(self):
        cluster = paper_testbed()
        assert cluster.num_nodes == 16
        assert cluster.node.gpus_per_node == 1
        assert cluster.node.gpu_memory_gb == pytest.approx(16.0)
        assert cluster.network.name == "100Gbps InfiniBand"
        assert cluster.total_workers == 16

    def test_validate_world_size(self):
        cluster = ClusterTopology(num_nodes=4)
        cluster.validate_world_size(4)
        with pytest.raises(ValueError):
            cluster.validate_world_size(5)

    def test_invalid_cluster(self):
        with pytest.raises(ValueError):
            ClusterTopology(num_nodes=0)
