"""Property-based tests (hypothesis) for core invariants.

These check the algebraic properties the paper's analysis relies on over a
wide range of randomly generated inputs: the A2SGD encoding/decoding
identities, conservation of mass in the collectives, error-feedback
conservation in the sparsifiers, and unbiasedness-style properties of the
quantizers.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.comm import CollectiveOp, allreduce_naive, allreduce_ring, reduce_scatter
from repro.compress import (
    A2SGDCompressor,
    GaussianKCompressor,
    QSGDCompressor,
    SignSGDCompressor,
    TopKCompressor,
)
from repro.tensor import Tensor


# Bounded, finite float arrays representative of gradients.  The package
# enables hardware flush-to-zero at import (repro.utils.denormals), so
# subnormal floats are not representable on this thread — hypothesis must
# not try to generate them.
gradient_arrays = hnp.arrays(
    dtype=np.float32,
    shape=st.integers(min_value=2, max_value=300),
    elements=st.floats(min_value=-10.0, max_value=10.0, allow_nan=False,
                       allow_infinity=False, allow_subnormal=False, width=32),
)

small_world = st.integers(min_value=1, max_value=6)


class TestA2SGDProperties:
    @given(gradient_arrays)
    @settings(max_examples=60, deadline=None)
    def test_two_means_are_nonnegative_and_bounded(self, gradient):
        mu_plus, mu_minus = A2SGDCompressor.two_level_means(gradient)
        assert mu_plus >= 0.0
        assert mu_minus >= 0.0
        # Each mean is a float32 masked dot divided by a count, so it can
        # overshoot the true bound by the dot's relative rounding error
        # (hypothesis found the seed's absolute 1e-6 margin was optimistic —
        # and that the old `positive_sum - total` cancellation could inflate
        # µ_- far beyond rounding, which two masked dots now prevent).
        peak = float(np.abs(gradient).max())
        limit = peak * (1.0 + 1e-5 * np.log2(2 + gradient.size)) + 1e-6
        assert mu_plus <= limit
        assert mu_minus <= limit

    @given(gradient_arrays)
    @settings(max_examples=60, deadline=None)
    def test_error_plus_encoding_reconstructs_gradient(self, gradient):
        """g = enc(g) + ε exactly, by construction (Algorithm 1 line 4)."""
        compressor = A2SGDCompressor()
        payload, ctx = compressor.compress(gradient)
        encoded = A2SGDCompressor.encode(gradient, payload[0], payload[1])
        np.testing.assert_allclose(ctx["error"] + encoded, gradient, atol=1e-5)

    @given(gradient_arrays)
    @settings(max_examples=60, deadline=None)
    def test_single_worker_roundtrip_lossless(self, gradient):
        compressor = A2SGDCompressor()
        payload, ctx = compressor.compress(gradient)
        np.testing.assert_allclose(compressor.decompress(payload, ctx), gradient, atol=1e-4)

    @given(gradient_arrays)
    @settings(max_examples=60, deadline=None)
    def test_encoding_sum_preserves_sign_split_mass(self, gradient):
        """Σ enc(g) over positives equals µ+·|positives| (mean definition)."""
        positives = gradient[gradient >= 0]
        mu_plus, _ = A2SGDCompressor.two_level_means(gradient)
        np.testing.assert_allclose(positives.sum(), mu_plus * positives.size, rtol=1e-3,
                                   atol=1e-3)

    @given(st.lists(gradient_arrays, min_size=2, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_wire_payload_always_two_scalars(self, gradients):
        n = min(g.size for g in gradients)
        assume(n >= 2)
        for g in gradients:
            payload, _ = A2SGDCompressor().compress(g[:n])
            assert payload.shape == (2,)


class TestCollectiveProperties:
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=200),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_ring_allreduce_matches_naive(self, world_size, length, seed):
        rng = np.random.default_rng(seed)
        buffers = [rng.standard_normal(length).astype(np.float32) for _ in range(world_size)]
        ring, _ = allreduce_ring(buffers, CollectiveOp.MEAN)
        naive, _ = allreduce_naive(buffers, CollectiveOp.MEAN)
        for a, b in zip(ring, naive):
            np.testing.assert_allclose(a, b, rtol=1e-4, atol=1e-5)

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=100),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_allreduce_sum_conserves_mass(self, world_size, length, seed):
        rng = np.random.default_rng(seed)
        buffers = [rng.standard_normal(length).astype(np.float32) for _ in range(world_size)]
        results, _ = allreduce_ring(buffers, CollectiveOp.SUM)
        np.testing.assert_allclose(results[0].sum(), np.stack(buffers).sum(), rtol=1e-3,
                                   atol=1e-3)

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=100),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_reduce_scatter_concatenation_equals_reduction(self, world_size, length, seed):
        rng = np.random.default_rng(seed)
        buffers = [rng.standard_normal(length).astype(np.float32) for _ in range(world_size)]
        chunks, _ = reduce_scatter(buffers, CollectiveOp.SUM)
        np.testing.assert_allclose(np.concatenate(chunks),
                                   np.sum(np.stack(buffers), axis=0), rtol=1e-4, atol=1e-4)


class TestSparsifierProperties:
    @given(gradient_arrays, st.floats(min_value=0.01, max_value=0.5))
    @settings(max_examples=60, deadline=None)
    def test_topk_residual_plus_payload_equals_corrected(self, gradient, ratio):
        """Error feedback never loses mass: residual + transmitted == accumulated."""
        compressor = TopKCompressor(ratio=ratio)
        payload, _ = compressor.compress(gradient)
        indices, values = TopKCompressor.unpack_payload(payload)
        transmitted = np.zeros_like(gradient)
        transmitted[indices] = values
        np.testing.assert_allclose(transmitted + compressor._residual, gradient, atol=1e-5)

    @given(gradient_arrays, st.floats(min_value=0.01, max_value=0.5))
    @settings(max_examples=60, deadline=None)
    def test_topk_selects_exactly_k_unique_indices(self, gradient, ratio):
        compressor = TopKCompressor(ratio=ratio)
        payload, ctx = compressor.compress(gradient)
        indices, _values = TopKCompressor.unpack_payload(payload)
        assert len(np.unique(indices)) == ctx["k"]
        assert np.all((0 <= indices) & (indices < gradient.size))

    @given(gradient_arrays)
    @settings(max_examples=40, deadline=None)
    def test_topk_transmits_largest_magnitudes(self, gradient):
        compressor = TopKCompressor(ratio=0.25, error_feedback=False)
        payload, ctx = compressor.compress(gradient)
        k = ctx["k"]
        indices, _values = TopKCompressor.unpack_payload(payload)
        selected = set(indices)
        threshold = np.sort(np.abs(gradient))[-k]
        must_be_selected = {int(i) for i in np.nonzero(np.abs(gradient) > threshold)[0]}
        assert must_be_selected.issubset(selected)

    @given(gradient_arrays)
    @settings(max_examples=40, deadline=None)
    def test_gaussiank_selection_within_bounds(self, gradient):
        compressor = GaussianKCompressor(ratio=0.1)
        indices = compressor.select(gradient)
        assert 1 <= len(indices) <= gradient.size
        assert len(np.unique(indices)) == len(indices)


class TestQuantizerProperties:
    @given(gradient_arrays, st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_qsgd_levels_bounded_and_sign_preserved(self, gradient, levels):
        compressor = QSGDCompressor(levels=levels, error_feedback=False)
        norm, quantized = compressor.quantize(gradient)
        assert np.abs(quantized).max() <= levels
        nonzero = quantized != 0
        assert np.all(np.sign(quantized[nonzero]) == np.sign(gradient[nonzero]))

    @given(gradient_arrays, st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_qsgd_dequantize_bounded_by_norm(self, gradient, levels):
        compressor = QSGDCompressor(levels=levels, error_feedback=False)
        norm, quantized = compressor.quantize(gradient)
        recovered = compressor.dequantize(norm, quantized)
        assert np.all(np.abs(recovered) <= norm + 1e-5)

    @given(gradient_arrays)
    @settings(max_examples=60, deadline=None)
    def test_signsgd_residual_conservation(self, gradient):
        compressor = SignSGDCompressor()
        payload, ctx = compressor.compress(gradient)
        transmitted = payload[0] * payload[1:]
        np.testing.assert_allclose(transmitted + compressor._residual, gradient, atol=1e-4)


class TestTensorProperties:
    @given(hnp.arrays(dtype=np.float32, shape=hnp.array_shapes(min_dims=1, max_dims=3,
                                                               min_side=1, max_side=6),
                      elements=st.floats(min_value=-100, max_value=100, allow_nan=False,
                                         allow_subnormal=False, width=32)))
    @settings(max_examples=60, deadline=None)
    def test_sum_backward_gradient_is_all_ones(self, data):
        t = Tensor(data, requires_grad=True)
        t.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones_like(data))

    @given(hnp.arrays(dtype=np.float32, shape=st.integers(min_value=1, max_value=50),
                      elements=st.floats(min_value=-50, max_value=50, allow_nan=False,
                                         allow_subnormal=False, width=32)))
    @settings(max_examples=60, deadline=None)
    def test_relu_output_nonnegative_and_idempotent(self, data):
        t = Tensor(data)
        out = t.relu()
        assert np.all(out.data >= 0)
        np.testing.assert_allclose(out.relu().data, out.data)

    @given(hnp.arrays(dtype=np.float32, shape=st.tuples(st.integers(1, 8), st.integers(2, 8)),
                      elements=st.floats(min_value=-20, max_value=20, allow_nan=False,
                                         allow_subnormal=False, width=32)))
    @settings(max_examples=60, deadline=None)
    def test_softmax_rows_are_distributions(self, data):
        from repro.tensor import functional as F
        probs = F.softmax(Tensor(data)).data
        assert np.all(probs >= 0)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(data.shape[0]), rtol=1e-4)
