"""Tests for trainer checkpointing."""

import numpy as np
import pytest

from repro.core import DistributedTrainer, TrainerConfig, load_checkpoint, save_checkpoint
from repro.core.flatten import flatten_parameters


def make_trainer(**overrides) -> DistributedTrainer:
    base = dict(model="fnn3", preset="tiny", algorithm="a2sgd", world_size=2, epochs=1,
                batch_size=16, max_iterations_per_epoch=4, num_train=128, num_test=32, seed=0)
    base.update(overrides)
    return DistributedTrainer(TrainerConfig(**base))


class TestCheckpointRoundtrip:
    def test_parameters_restored_exactly(self, tmp_path):
        trainer = make_trainer()
        trainer.train()
        path = save_checkpoint(trainer, tmp_path / "ckpt.npz")
        assert path.exists()

        fresh = make_trainer()
        load_checkpoint(fresh, path)
        for original, restored in zip(trainer.replicas, fresh.replicas):
            np.testing.assert_array_equal(flatten_parameters(original),
                                          flatten_parameters(restored))

    def test_progress_and_metrics_restored(self, tmp_path):
        trainer = make_trainer(epochs=2)
        trainer.train()
        path = save_checkpoint(trainer, tmp_path / "ckpt.npz")

        fresh = make_trainer(epochs=2)
        load_checkpoint(fresh, path)
        assert fresh._global_iteration == trainer._global_iteration
        assert fresh.metrics.metric == trainer.metrics.metric
        assert fresh.metrics.train_loss == trainer.metrics.train_loss

    def test_optimizer_momentum_restored(self, tmp_path):
        trainer = make_trainer(algorithm="dense")
        trainer.train()
        path = save_checkpoint(trainer, tmp_path / "ckpt.npz")

        fresh = make_trainer(algorithm="dense")
        load_checkpoint(fresh, path)
        original_state = trainer.optimizers[0].state_dict()
        restored_state = fresh.optimizers[0].state_dict()
        assert set(original_state["velocity"]) == set(restored_state["velocity"])
        for key in original_state["velocity"]:
            np.testing.assert_allclose(original_state["velocity"][key],
                                       restored_state["velocity"][key])

    def test_compressor_residual_restored(self, tmp_path):
        trainer = make_trainer(algorithm="topk", compressor_kwargs={"ratio": 0.05})
        trainer.train()
        assert trainer.compressors[0]._residual is not None
        path = save_checkpoint(trainer, tmp_path / "ckpt.npz")

        fresh = make_trainer(algorithm="topk", compressor_kwargs={"ratio": 0.05})
        load_checkpoint(fresh, path)
        np.testing.assert_allclose(fresh.compressors[0]._residual,
                                   trainer.compressors[0]._residual)

    def test_world_size_mismatch_raises(self, tmp_path):
        trainer = make_trainer(world_size=2)
        trainer.train()
        path = save_checkpoint(trainer, tmp_path / "ckpt.npz")
        bigger = make_trainer(world_size=4)
        with pytest.raises(KeyError):
            load_checkpoint(bigger, path)

    def test_creates_parent_directories(self, tmp_path):
        trainer = make_trainer()
        path = save_checkpoint(trainer, tmp_path / "nested" / "dir" / "ckpt.npz")
        assert path.exists()
