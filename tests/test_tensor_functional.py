"""Tests for functional NN operations: convolution, pooling, softmax, losses."""

import numpy as np
import pytest

from repro.tensor import Tensor, functional as F
from tests.conftest import check_gradient, numerical_gradient


class TestConv2d:
    def test_output_shape_no_padding(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32))
        w = Tensor(rng.standard_normal((5, 3, 3, 3)).astype(np.float32))
        out = F.conv2d(x, w)
        assert out.shape == (2, 5, 6, 6)

    def test_output_shape_with_padding_and_stride(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 8, 8)).astype(np.float32))
        w = Tensor(rng.standard_normal((4, 2, 3, 3)).astype(np.float32))
        out = F.conv2d(x, w, stride=2, padding=1)
        assert out.shape == (1, 4, 4, 4)

    def test_identity_kernel_reproduces_input(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        w = np.zeros((1, 1, 3, 3), dtype=np.float32)
        w[0, 0, 1, 1] = 1.0
        out = F.conv2d(Tensor(x), Tensor(w), padding=1)
        np.testing.assert_allclose(out.data, x, rtol=1e-5)

    def test_matches_explicit_convolution(self, rng):
        x = rng.standard_normal((1, 1, 5, 5)).astype(np.float32)
        w = rng.standard_normal((1, 1, 3, 3)).astype(np.float32)
        out = F.conv2d(Tensor(x), Tensor(w)).data[0, 0]
        expected = np.zeros((3, 3), dtype=np.float32)
        for i in range(3):
            for j in range(3):
                expected[i, j] = (x[0, 0, i:i + 3, j:j + 3] * w[0, 0]).sum()
        np.testing.assert_allclose(out, expected, rtol=1e-4)

    def test_bias_added_per_channel(self, rng):
        x = Tensor(np.zeros((1, 1, 4, 4), dtype=np.float32))
        w = Tensor(np.zeros((2, 1, 3, 3), dtype=np.float32))
        b = Tensor(np.array([1.0, -2.0], dtype=np.float32))
        out = F.conv2d(x, w, b, padding=1)
        np.testing.assert_allclose(out.data[0, 0], np.ones((4, 4)))
        np.testing.assert_allclose(out.data[0, 1], -2 * np.ones((4, 4)))

    def test_gradient_wrt_input(self, rng):
        w = rng.standard_normal((2, 1, 3, 3)).astype(np.float32) * 0.5
        x = rng.standard_normal((1, 1, 5, 5)).astype(np.float32)
        check_gradient(lambda t: F.conv2d(t, Tensor(w), padding=1).sum(), x,
                       rtol=3e-2, atol=3e-3)

    def test_gradient_wrt_weight(self, rng):
        x = Tensor(rng.standard_normal((2, 1, 5, 5)).astype(np.float32))
        w_init = rng.standard_normal((2, 1, 3, 3)).astype(np.float32) * 0.5
        check_gradient(lambda t: F.conv2d(x, t, padding=1).sum(), w_init,
                       rtol=3e-2, atol=3e-3)

    def test_gradient_wrt_bias(self, rng):
        x = Tensor(rng.standard_normal((2, 1, 4, 4)).astype(np.float32))
        w = Tensor(rng.standard_normal((3, 1, 3, 3)).astype(np.float32))
        b = Tensor(np.zeros(3, dtype=np.float32), requires_grad=True)
        F.conv2d(x, w, b, padding=1).sum().backward()
        np.testing.assert_allclose(b.grad, np.full(3, 2 * 4 * 4), rtol=1e-4)

    def test_channel_mismatch_raises(self, rng):
        x = Tensor(np.zeros((1, 3, 4, 4), dtype=np.float32))
        w = Tensor(np.zeros((2, 4, 3, 3), dtype=np.float32))
        with pytest.raises(ValueError):
            F.conv2d(x, w)

    def test_kernel_too_large_raises(self):
        x = Tensor(np.zeros((1, 1, 2, 2), dtype=np.float32))
        w = Tensor(np.zeros((1, 1, 5, 5), dtype=np.float32))
        with pytest.raises(ValueError):
            F.conv2d(x, w)


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), kernel=2)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_gradient_flows_to_max_only(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4), requires_grad=True)
        F.max_pool2d(x, kernel=2).sum().backward()
        assert x.grad.sum() == pytest.approx(4.0)
        assert x.grad[0, 0, 1, 1] == pytest.approx(1.0)
        assert x.grad[0, 0, 0, 0] == pytest.approx(0.0)

    def test_max_pool_tie_breaking_single_winner(self):
        x = Tensor(np.ones((1, 1, 2, 2), dtype=np.float32), requires_grad=True)
        F.max_pool2d(x, kernel=2).sum().backward()
        assert x.grad.sum() == pytest.approx(1.0)

    def test_avg_pool_values_and_gradient(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4), requires_grad=True)
        out = F.avg_pool2d(x, kernel=2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 1, 4, 4), 0.25))

    def test_avg_pool_requires_exact_division(self):
        with pytest.raises(NotImplementedError):
            F.avg_pool2d(Tensor(np.zeros((1, 1, 5, 5), dtype=np.float32)), kernel=2)

    def test_global_avg_pool(self, rng):
        x = rng.standard_normal((2, 3, 4, 4)).astype(np.float32)
        out = F.global_avg_pool2d(Tensor(x))
        np.testing.assert_allclose(out.data, x.mean(axis=(2, 3)), rtol=1e-5)


class TestSoftmaxAndLosses:
    def test_softmax_rows_sum_to_one(self, rng):
        x = Tensor(rng.standard_normal((5, 7)).astype(np.float32))
        probs = F.softmax(x)
        np.testing.assert_allclose(probs.data.sum(axis=1), np.ones(5), rtol=1e-5)

    def test_softmax_stable_for_large_logits(self):
        x = Tensor(np.array([[1000.0, 1000.0, -1000.0]], dtype=np.float32))
        probs = F.softmax(x)
        assert np.isfinite(probs.data).all()
        np.testing.assert_allclose(probs.data[0, :2], [0.5, 0.5], atol=1e-5)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.standard_normal((4, 6)).astype(np.float32))
        np.testing.assert_allclose(F.log_softmax(x).data, np.log(F.softmax(x).data),
                                   rtol=1e-4, atol=1e-5)

    def test_cross_entropy_value_matches_manual(self, rng):
        logits = rng.standard_normal((6, 4)).astype(np.float32)
        targets = rng.integers(0, 4, size=6)
        loss = F.cross_entropy(Tensor(logits), targets)
        shifted = logits - logits.max(axis=1, keepdims=True)
        logp = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -logp[np.arange(6), targets].mean()
        assert loss.item() == pytest.approx(expected, rel=1e-5)

    def test_cross_entropy_gradient_is_softmax_minus_onehot(self, rng):
        logits = Tensor(rng.standard_normal((3, 5)).astype(np.float32), requires_grad=True)
        targets = np.array([0, 2, 4])
        F.cross_entropy(logits, targets).backward()
        probs = F.softmax(Tensor(logits.data)).data
        onehot = np.zeros_like(probs)
        onehot[np.arange(3), targets] = 1.0
        np.testing.assert_allclose(logits.grad, (probs - onehot) / 3, rtol=1e-4, atol=1e-6)

    def test_cross_entropy_gradient_numerical(self, rng):
        logits = rng.standard_normal((4, 3)).astype(np.float32)
        targets = np.array([0, 1, 2, 1])
        check_gradient(lambda t: F.cross_entropy(t, targets), logits)

    def test_cross_entropy_batch_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((3, 4), dtype=np.float32)), np.array([0, 1]))

    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = np.full((2, 3), -50.0, dtype=np.float32)
        logits[0, 1] = 50.0
        logits[1, 2] = 50.0
        loss = F.cross_entropy(Tensor(logits), np.array([1, 2]))
        assert loss.item() < 1e-5

    def test_nll_loss_matches_cross_entropy(self, rng):
        logits = Tensor(rng.standard_normal((5, 4)).astype(np.float32))
        targets = rng.integers(0, 4, size=5)
        ce = F.cross_entropy(logits, targets)
        nll = F.nll_loss(F.log_softmax(logits), targets)
        assert nll.item() == pytest.approx(ce.item(), rel=1e-4)

    def test_mse_loss(self):
        pred = Tensor(np.array([1.0, 2.0], dtype=np.float32), requires_grad=True)
        target = np.array([0.0, 0.0], dtype=np.float32)
        loss = F.mse_loss(pred, Tensor(target))
        assert loss.item() == pytest.approx(2.5)
        loss.backward()
        np.testing.assert_allclose(pred.grad, [1.0, 2.0])


class TestDropoutEmbedding:
    def test_dropout_eval_mode_is_identity(self, rng):
        x = Tensor(rng.standard_normal(100).astype(np.float32))
        out = F.dropout(x, 0.5, rng, training=False)
        assert out is x

    def test_dropout_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones(200_00, dtype=np.float32))
        out = F.dropout(x, 0.3, rng, training=True)
        assert out.data.mean() == pytest.approx(1.0, abs=0.03)

    def test_dropout_invalid_probability(self, rng):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, rng)

    def test_embedding_lookup_and_gradient(self, rng):
        weight = Tensor(rng.standard_normal((10, 4)).astype(np.float32), requires_grad=True)
        indices = np.array([[1, 1], [3, 0]])
        out = F.embedding(indices, weight)
        assert out.shape == (2, 2, 4)
        np.testing.assert_allclose(out.data[0, 0], weight.data[1])
        out.sum().backward()
        # Token 1 appears twice, so its gradient row accumulates twice.
        np.testing.assert_allclose(weight.grad[1], np.full(4, 2.0))
        np.testing.assert_allclose(weight.grad[2], np.zeros(4))

    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(out, [[1, 0, 0], [0, 0, 1]])

    def test_linear_matches_manual(self, rng):
        x = rng.standard_normal((3, 4)).astype(np.float32)
        w = rng.standard_normal((2, 4)).astype(np.float32)
        b = rng.standard_normal(2).astype(np.float32)
        out = F.linear(Tensor(x), Tensor(w), Tensor(b))
        np.testing.assert_allclose(out.data, x @ w.T + b, rtol=1e-5)
