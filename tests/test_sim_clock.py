"""VirtualClock unit tests: ordering, determinism, pending/restore."""

import pytest

from repro.sim import VirtualClock


class TestScheduling:
    def test_pop_returns_earliest_event(self):
        clock = VirtualClock()
        clock.schedule(0.5, 0)
        clock.schedule(0.2, 1)
        clock.schedule(0.9, 2)
        assert clock.pop() == (0.2, 1)
        assert clock.pop() == (0.5, 0)
        assert clock.pop() == (0.9, 2)

    def test_pop_advances_now(self):
        clock = VirtualClock()
        clock.schedule(1.5, 0)
        assert clock.now == 0.0
        clock.pop()
        assert clock.now == 1.5

    def test_ties_break_by_rank(self):
        clock = VirtualClock()
        clock.schedule(1.0, 3)
        clock.schedule(1.0, 1)
        clock.schedule(1.0, 2)
        assert [clock.pop()[1] for _ in range(3)] == [1, 2, 3]

    def test_len_and_peek(self):
        clock = VirtualClock()
        assert len(clock) == 0
        clock.schedule(0.3, 0)
        clock.schedule(0.1, 1)
        assert len(clock) == 2
        assert clock.peek() == (0.1, 1)
        assert len(clock) == 2          # peek does not consume

    def test_scheduling_in_the_past_raises(self):
        clock = VirtualClock()
        clock.schedule(1.0, 0)
        clock.pop()
        with pytest.raises(ValueError):
            clock.schedule(0.5, 0)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            VirtualClock().pop()


class TestPendingRestore:
    def test_pending_maps_rank_to_time(self):
        clock = VirtualClock()
        clock.schedule(0.4, 0)
        clock.schedule(0.7, 1)
        assert clock.pending() == {0: 0.4, 1: 0.7}

    def test_restore_reproduces_event_order(self):
        clock = VirtualClock()
        for when, rank in [(0.3, 0), (0.1, 1), (0.2, 2)]:
            clock.schedule(when, rank)
        clock.pop()                      # consume (0.1, 1)
        snapshot_now, snapshot_pending = clock.now, clock.pending()

        fresh = VirtualClock()
        fresh.restore(snapshot_now, snapshot_pending)
        assert fresh.now == snapshot_now
        remaining = [fresh.pop() for _ in range(len(fresh))]
        assert remaining == [(0.2, 2), (0.3, 0)]

    def test_restore_empty_pending(self):
        fresh = VirtualClock()
        fresh.restore(5.0, {})
        assert fresh.now == 5.0
        assert len(fresh) == 0
