"""Tests for parameter initializers."""

import math

import numpy as np
import pytest

from repro.tensor import init


class TestInitializers:
    def test_kaiming_normal_std(self, rng):
        w = init.kaiming_normal((512, 256), rng)
        expected_std = math.sqrt(2.0 / 256)
        assert w.data.std() == pytest.approx(expected_std, rel=0.1)
        assert w.requires_grad

    def test_kaiming_normal_conv_fan_in(self, rng):
        w = init.kaiming_normal((64, 32, 3, 3), rng)
        expected_std = math.sqrt(2.0 / (32 * 9))
        assert w.data.std() == pytest.approx(expected_std, rel=0.1)

    def test_kaiming_uniform_bound(self, rng):
        w = init.kaiming_uniform((128, 64), rng)
        bound = math.sqrt(2.0) * math.sqrt(3.0 / 64)
        assert np.abs(w.data).max() <= bound + 1e-6

    def test_xavier_uniform_bound(self, rng):
        w = init.xavier_uniform((100, 50), rng)
        bound = math.sqrt(6.0 / 150)
        assert np.abs(w.data).max() <= bound + 1e-6

    def test_uniform_bound(self, rng):
        w = init.uniform((50, 50), rng, bound=0.25)
        assert np.abs(w.data).max() <= 0.25

    def test_zeros_and_ones(self):
        assert init.zeros((3, 2)).data.sum() == 0.0
        assert init.ones((4,)).data.sum() == 4.0
        assert init.zeros((3,)).requires_grad and init.ones((3,)).requires_grad

    def test_reproducible_with_same_generator(self):
        a = init.kaiming_normal((8, 8), np.random.default_rng(7))
        b = init.kaiming_normal((8, 8), np.random.default_rng(7))
        np.testing.assert_array_equal(a.data, b.data)

    def test_dtype_is_float32(self, rng):
        for builder in (init.kaiming_normal, init.kaiming_uniform, init.xavier_uniform):
            assert builder((4, 4), rng).dtype == np.float32
