"""Tests for the baseline compressors: Dense, Top-K, Gaussian-K, QSGD and extensions."""

import numpy as np
import pytest

from repro.compress import (
    DenseCompressor,
    ExchangeKind,
    GaussianKCompressor,
    QSGDCompressor,
    RandKCompressor,
    SignSGDCompressor,
    TernGradCompressor,
    TopKCompressor,
)
from repro.compress.base import sparsity_k


class TestSparsityHelper:
    def test_paper_ratio(self):
        assert sparsity_k(1_000_000, 0.001) == 1000

    def test_minimum_of_one(self):
        assert sparsity_k(10, 0.001) == 1

    def test_full_ratio(self):
        assert sparsity_k(100, 1.0) == 100

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            sparsity_k(100, 0.0)
        with pytest.raises(ValueError):
            sparsity_k(100, 1.5)


class TestDense:
    def test_roundtrip_identity(self, gradient_vector):
        compressor = DenseCompressor()
        payload, ctx = compressor.compress(gradient_vector)
        np.testing.assert_array_equal(payload, gradient_vector)
        np.testing.assert_array_equal(compressor.decompress(payload, ctx), gradient_vector)

    def test_wire_bits_32n(self):
        assert DenseCompressor().wire_bits(1000) == 32_000.0

    def test_complexity_constant(self):
        assert DenseCompressor().computation_complexity(10**6) == "O(1)"

    def test_exchange_allreduce(self):
        assert DenseCompressor.exchange is ExchangeKind.ALLREDUCE


class TestTopK:
    def test_selects_largest_magnitudes(self):
        g = np.array([0.1, -5.0, 0.2, 4.0, -0.3], dtype=np.float32)
        compressor = TopKCompressor(ratio=0.4)  # k = 2
        payload, ctx = compressor.compress(g)
        indices, _ = TopKCompressor.unpack_payload(payload)
        assert ctx["k"] == 2
        assert set(indices) == {1, 3}

    def test_payload_layout(self, gradient_vector):
        compressor = TopKCompressor(ratio=0.01)
        payload, ctx = compressor.compress(gradient_vector)
        k = ctx["k"]
        assert payload.shape == (2 * k,)
        assert payload.dtype == np.float32   # indices ride as int32 bit views
        assert k == sparsity_k(gradient_vector.size, 0.01)

    def test_payload_pack_roundtrip_large_indices(self):
        # int32 bit patterns survive the float32 reinterpretation exactly,
        # unlike a float cast, which loses index precision for huge models.
        indices = np.array([0, 1, 2**31 - 1, 123456789], dtype=np.int64)
        values = np.array([1.5, -2.0, 0.25, 3.0], dtype=np.float32)
        packed = TopKCompressor.pack_payload(indices, values)
        out_idx, out_vals = TopKCompressor.unpack_payload(packed)
        np.testing.assert_array_equal(out_idx, indices)
        np.testing.assert_array_equal(out_vals, values)

    def test_unpack_accepts_legacy_float64_payloads(self):
        legacy = np.array([0.0, 3.0, 2.0, 4.0])   # indices as plain numbers
        indices, values = TopKCompressor.unpack_payload(legacy)
        np.testing.assert_array_equal(indices, [0, 3])
        np.testing.assert_array_equal(values, [2.0, 4.0])

    def test_error_feedback_accumulates_untransmitted_mass(self):
        g = np.array([1.0, 0.1, 0.1, 0.1], dtype=np.float32)
        compressor = TopKCompressor(ratio=0.25)   # transmits one value
        compressor.compress(g)
        # The residual holds the three untransmitted small values.
        assert compressor._residual is not None
        assert compressor._residual[0] == 0.0
        np.testing.assert_allclose(compressor._residual[1:], [0.1, 0.1, 0.1], atol=1e-6)
        # After enough iterations the residual pushes small coordinates out:
        # their residual grows by 0.1 per step until it exceeds the
        # repeatedly-reset 1.0 coordinate, so every coordinate is eventually
        # transmitted (the classic error-feedback guarantee).
        transmitted_indices = set()
        for _ in range(40):
            payload, _ = compressor.compress(g)
            indices, _values = TopKCompressor.unpack_payload(payload)
            transmitted_indices.update(int(i) for i in indices)
        assert transmitted_indices == {0, 1, 2, 3}

    def test_no_error_feedback_keeps_no_residual(self, gradient_vector):
        compressor = TopKCompressor(ratio=0.01, error_feedback=False)
        compressor.compress(gradient_vector)
        assert compressor._residual is None

    def test_decompress_gathered_averages_workers(self):
        n = 10
        compressor = TopKCompressor(ratio=0.2)
        # Hand-built payloads: worker A sends index 0 value 2, worker B index 0 value 4.
        payloads = [np.array([0.0, 1.0, 2.0, 2.0]), np.array([0.0, 3.0, 4.0, 4.0])]
        dense = compressor.decompress_gathered(payloads, {"n": n, "k": 2})
        assert dense[0] == pytest.approx(3.0)   # (2 + 4) / 2
        assert dense[1] == pytest.approx(1.0)   # only worker A sent index 1
        assert dense[3] == pytest.approx(2.0)   # only worker B sent index 3
        assert dense[5] == 0.0

    def test_unique_indices_reconstruct_exactly(self):
        # The decompress contract requires unique indices per payload (every
        # selector — top-k, random subset, threshold — produces them), which
        # lets reconstruction use direct fancy-index addition.
        compressor = TopKCompressor(ratio=0.4)
        payload = TopKCompressor.pack_payload(np.array([2, 4]),
                                              np.array([1.0, -3.0], dtype=np.float32))
        dense = compressor.decompress_gathered([payload], {"n": 5, "k": 2})
        np.testing.assert_allclose(dense, [0.0, 0.0, 1.0, 0.0, -3.0])

    def test_wire_bits_paper_counts_values_only(self):
        compressor = TopKCompressor(ratio=0.001)
        assert compressor.wire_bits(1_000_000) == 32.0 * 1000
        with_index = TopKCompressor(ratio=0.001, include_index_bits=True)
        assert with_index.wire_bits(1_000_000) == 64.0 * 1000

    def test_reset_state_clears_residual(self, gradient_vector):
        compressor = TopKCompressor(ratio=0.01)
        compressor.compress(gradient_vector)
        compressor.reset_state()
        assert compressor._residual is None
        assert compressor.stats.iterations == 0

    def test_ratio_validation(self):
        with pytest.raises(ValueError):
            TopKCompressor(ratio=0.0)

    def test_exchange_allgather(self):
        assert TopKCompressor.exchange is ExchangeKind.ALLGATHER


class TestGaussianK:
    def test_threshold_close_to_topk_threshold_on_gaussian_data(self, rng):
        g = (rng.standard_normal(100_000) * 0.01).astype(np.float32)
        compressor = GaussianKCompressor(ratio=0.001)
        threshold = compressor.estimate_threshold(g)
        k = sparsity_k(g.size, 0.001)
        exact_threshold = np.sort(np.abs(g))[-k]
        assert threshold == pytest.approx(exact_threshold, rel=0.15)

    def test_selection_count_near_target_on_gaussian_data(self, rng):
        g = (rng.standard_normal(100_000) * 0.01).astype(np.float32)
        compressor = GaussianKCompressor(ratio=0.001)
        indices = compressor.select(g)
        k_target = sparsity_k(g.size, 0.001)
        assert 0.2 * k_target <= len(indices) <= 4 * k_target

    def test_selects_at_least_one_even_for_constant_vector(self):
        compressor = GaussianKCompressor(ratio=0.001)
        indices = compressor.select(np.zeros(1000, dtype=np.float32))
        assert len(indices) >= 1

    def test_selection_capped_for_heavy_tailed_data(self, rng):
        # A distribution with much heavier tails than Gaussian would select
        # too many coordinates; the cap bounds the traffic blow-up.
        g = rng.standard_t(df=1.2, size=50_000).astype(np.float32)
        compressor = GaussianKCompressor(ratio=0.001)
        indices = compressor.select(g)
        assert len(indices) <= 4 * sparsity_k(g.size, 0.001)

    def test_complexity_is_linear(self):
        assert GaussianKCompressor().computation_complexity(10**6) == "O(n)"

    def test_compress_roundtrip_through_gather(self, rng):
        g = (rng.standard_normal(5000) * 0.01).astype(np.float32)
        compressor = GaussianKCompressor(ratio=0.01)
        payload, ctx = compressor.compress(g)
        dense = compressor.decompress_gathered([payload], ctx)
        # The densified payload must only contain transmitted coordinates.
        assert dense.shape == g.shape
        assert np.count_nonzero(dense) == payload.size // 2


class TestQSGD:
    def test_quantization_levels_bounded(self, rng):
        g = rng.standard_normal(1000).astype(np.float32)
        compressor = QSGDCompressor(levels=4)
        norm, levels = compressor.quantize(g)
        assert norm == pytest.approx(np.linalg.norm(g), rel=1e-5)
        assert np.abs(levels).max() <= 4

    def test_quantization_unbiased_in_expectation(self, rng):
        g = rng.standard_normal(200).astype(np.float32)
        compressor = QSGDCompressor(levels=4, error_feedback=False,
                                    rng=np.random.default_rng(0))
        estimates = np.zeros_like(g, dtype=np.float64)
        trials = 400
        for _ in range(trials):
            norm, levels = compressor.quantize(g)
            estimates += compressor.dequantize(norm, levels)
        estimates /= trials
        error = np.abs(estimates - g).mean() / np.abs(g).mean()
        assert error < 0.15

    def test_zero_vector_quantizes_to_zero(self):
        compressor = QSGDCompressor()
        norm, levels = compressor.quantize(np.zeros(10, dtype=np.float32))
        assert norm == 0.0
        assert np.all(levels == 0)

    def test_compress_payload_layout(self, gradient_vector):
        compressor = QSGDCompressor(bucket_size=512)
        payload, ctx = compressor.compress(gradient_vector)
        num_buckets = int(np.ceil(gradient_vector.size / 512))
        assert payload.shape == (1 + num_buckets + gradient_vector.size,)
        assert int(payload[0]) == num_buckets
        assert ctx["n"] == gradient_vector.size

    def test_unbucketed_payload_layout(self, gradient_vector):
        compressor = QSGDCompressor(bucket_size=None)
        payload, _ = compressor.compress(gradient_vector)
        assert payload.shape == (2 + gradient_vector.size,)

    def test_bucketed_quantization_has_lower_error(self, rng):
        g = rng.standard_normal(8192).astype(np.float32)
        coarse = QSGDCompressor(bucket_size=None, error_feedback=False,
                                rng=np.random.default_rng(0))
        fine = QSGDCompressor(bucket_size=128, error_feedback=False,
                              rng=np.random.default_rng(0))
        coarse.compress(g)
        fine.compress(g)
        assert fine.stats.last_compression_error < coarse.stats.last_compression_error

    def test_bucket_size_validation(self):
        with pytest.raises(ValueError):
            QSGDCompressor(bucket_size=0)

    def test_bucketed_roundtrip_shapes(self, rng):
        g = rng.standard_normal(1000).astype(np.float32)
        compressor = QSGDCompressor(bucket_size=300, error_feedback=False)
        norms, levels = compressor.quantize_bucketed(g)
        assert levels.shape == (1000,)
        assert norms.shape == (4,)
        recovered = compressor.dequantize_bucketed(norms, levels)
        assert recovered.shape == (1000,)

    def test_error_feedback_residual_updates(self, gradient_vector):
        compressor = QSGDCompressor(error_feedback=True)
        compressor.compress(gradient_vector)
        assert compressor._residual is not None
        assert compressor._residual.shape == gradient_vector.shape

    def test_decompress_gathered_averages(self, rng):
        g = rng.standard_normal(100).astype(np.float32)
        c0 = QSGDCompressor(rng=np.random.default_rng(1), error_feedback=False)
        c1 = QSGDCompressor(rng=np.random.default_rng(2), error_feedback=False)
        p0, ctx = c0.compress(g)
        p1, _ = c1.compress(g)
        dense = c0.decompress_gathered([p0, p1], ctx)
        assert dense.shape == g.shape
        # The average of two unbiased estimates stays close to the input.
        assert np.corrcoef(dense, g)[0, 1] > 0.7

    def test_wire_bits_formula(self):
        assert QSGDCompressor().wire_bits(1000) == pytest.approx(2.8 * 1000 + 32)

    def test_complexity_reports_reference_implementation(self):
        assert QSGDCompressor().computation_complexity(10**6) == "O(n^2)"

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            QSGDCompressor(levels=0)


class TestRandK:
    def test_selects_k_random_indices(self, gradient_vector):
        compressor = RandKCompressor(ratio=0.01, rng=np.random.default_rng(0))
        payload, ctx = compressor.compress(gradient_vector)
        assert ctx["k"] == sparsity_k(gradient_vector.size, 0.01)
        indices, _ = RandKCompressor.unpack_payload(payload)
        assert len(np.unique(indices)) == len(indices)

    def test_different_iterations_select_different_sets(self, gradient_vector):
        compressor = RandKCompressor(ratio=0.01, rng=np.random.default_rng(0))
        p1, _ = compressor.compress(gradient_vector)
        p2, _ = compressor.compress(gradient_vector)
        i1, _v1 = RandKCompressor.unpack_payload(p1)
        i2, _v2 = RandKCompressor.unpack_payload(p2)
        assert set(i1) != set(i2)

    def test_complexity(self):
        assert RandKCompressor().computation_complexity(100) == "O(k)"


class TestTernGrad:
    def test_values_are_ternary(self, rng):
        g = rng.standard_normal(500).astype(np.float32)
        compressor = TernGradCompressor(rng=np.random.default_rng(0))
        payload, _ = compressor.compress(g)
        ternary = payload[1:]
        assert set(np.unique(ternary)).issubset({-1.0, 0.0, 1.0})

    def test_zero_gradient(self):
        compressor = TernGradCompressor()
        payload, _ = compressor.compress(np.zeros(10, dtype=np.float32))
        assert np.all(payload[1:] == 0)

    def test_expectation_roughly_unbiased(self, rng):
        g = (rng.standard_normal(100) * 0.1).astype(np.float32)
        compressor = TernGradCompressor(rng=np.random.default_rng(0), clip_std=None)
        total = np.zeros_like(g, dtype=np.float64)
        trials = 600
        for _ in range(trials):
            payload, ctx = compressor.compress(g)
            total += compressor.decompress_gathered([payload], ctx)
        mean_estimate = total / trials
        assert np.corrcoef(mean_estimate, g)[0, 1] > 0.9

    def test_wire_bits(self):
        assert TernGradCompressor().wire_bits(1000) == pytest.approx(2 * 1000 + 32)


class TestSignSGD:
    def test_payload_contains_scale_and_signs(self, gradient_vector):
        compressor = SignSGDCompressor()
        payload, _ = compressor.compress(gradient_vector)
        assert payload.shape == (gradient_vector.size + 1,)
        assert set(np.unique(payload[1:])).issubset({-1.0, 0.0, 1.0})
        assert payload[0] == pytest.approx(np.abs(gradient_vector).mean(), rel=1e-5)

    def test_error_feedback_reduces_longrun_bias(self, rng):
        # With EF, the accumulated transmitted signal tracks the accumulated
        # gradient; without EF it does not.
        g = (rng.standard_normal(2000) * 0.01).astype(np.float32)
        ef = SignSGDCompressor(error_feedback=True)
        total = np.zeros_like(g, dtype=np.float64)
        for _ in range(50):
            payload, ctx = ef.compress(g)
            total += ef.decompress_gathered([payload], ctx)
        relative_gap = np.linalg.norm(total / 50 - g) / np.linalg.norm(g)
        assert relative_gap < 0.5

    def test_wire_bits_one_per_coordinate(self):
        assert SignSGDCompressor().wire_bits(1000) == pytest.approx(1032.0)

    def test_reset_state(self, gradient_vector):
        compressor = SignSGDCompressor()
        compressor.compress(gradient_vector)
        compressor.reset_state()
        assert compressor._residual is None
