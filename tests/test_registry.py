"""Tests for the unified registry framework and its concrete instances."""

import pytest

from repro.registry import Registry, RegistryKeyError, normalize_name


class TestNormalization:
    def test_case_and_punctuation_insensitive(self):
        assert normalize_name("Top-K") == "topk"
        assert normalize_name("top_k") == "topk"
        assert normalize_name("  TopK ") == "topk"

    def test_composite_keys_keep_separator(self):
        assert normalize_name("fnn3/tiny") == "fnn3/tiny"
        assert normalize_name("LSTM_PTB/Tiny") == "lstmptb/tiny"


class TestRegistry:
    def make(self):
        registry = Registry("widget")
        registry.register("alpha", lambda **kw: ("alpha", kw),
                          aliases=("first",), description="the first widget")
        registry.register("beta", lambda **kw: ("beta", kw), description="the second widget")
        return registry

    def test_register_and_get(self):
        registry = self.make()
        assert registry.get("alpha")() == ("alpha", {})
        assert registry.get("ALPHA")() == ("alpha", {})
        assert registry.get("first")() == ("alpha", {})

    def test_create_forwards_kwargs(self):
        registry = self.make()
        assert registry.create("beta", size=3) == ("beta", {"size": 3})

    def test_decorator_registration(self):
        registry = Registry("thing")

        @registry.register("gadget", description="a gadget")
        class Gadget:
            pass

        assert registry.get("gadget") is Gadget
        assert isinstance(registry.create("gadget"), Gadget)

    def test_decorator_defaults_to_class_name(self):
        registry = Registry("thing")

        @registry.register()
        class Sprocket:
            """A sprocket for testing."""

        assert registry.get("Sprocket") is Sprocket
        assert registry.describe()["Sprocket"] == "A sprocket for testing."

    def test_list_is_sorted_and_excludes_aliases(self):
        registry = self.make()
        assert registry.list() == ["alpha", "beta"]

    def test_describe(self):
        registry = self.make()
        assert registry.describe() == {"alpha": "the first widget",
                                       "beta": "the second widget"}

    def test_canonical_resolves_aliases(self):
        registry = self.make()
        assert registry.canonical("FIRST") == "alpha"

    def test_alias_after_registration(self):
        registry = self.make()
        registry.alias("a", "alpha")
        assert registry.get("a")() == ("alpha", {})

    def test_unknown_name_error_is_actionable(self):
        registry = self.make()
        with pytest.raises(KeyError) as excinfo:
            registry.get("alpah")
        message = str(excinfo.value)
        assert "unknown widget 'alpah'" in message
        assert "alpha" in message and "beta" in message
        assert "did you mean" in message

    def test_unknown_name_error_type(self):
        registry = self.make()
        with pytest.raises(RegistryKeyError) as excinfo:
            registry.get("nope")
        assert excinfo.value.kind == "widget"
        assert excinfo.value.available == ["alpha", "beta"]

    def test_duplicate_registration_rejected(self):
        registry = self.make()
        with pytest.raises(ValueError):
            registry.register("alpha", lambda: None)

    def test_overwrite_allows_replacement(self):
        registry = self.make()
        registry.register("alpha", lambda **kw: "replaced", overwrite=True)
        assert registry.get("alpha")() == "replaced"

    def test_mapping_protocol(self):
        registry = self.make()
        assert "alpha" in registry and "first" in registry and "nope" not in registry
        assert sorted(registry) == ["alpha", "beta"]
        assert len(registry) == 2
        assert registry["beta"]() == ("beta", {})
        assert dict(registry.items())["alpha"]() == ("alpha", {})


class TestConcreteRegistries:
    """Every component family is reachable through the one framework."""

    def test_compressors(self):
        from repro.compress.registry import COMPRESSORS
        assert "a2sgd" in COMPRESSORS
        assert COMPRESSORS.kind == "compressor"
        assert COMPRESSORS.describe()["a2sgd"]

    def test_models(self):
        from repro.models.registry import MODELS
        assert "fnn3/tiny" in MODELS
        assert MODELS.get("fnn3/tiny").task == "classification"

    def test_datasets(self):
        from repro.data.registry import DATASETS
        assert "mnist_tiny" in DATASETS

    def test_optimizers(self):
        from repro.optim.registry import OPTIMIZERS
        from repro.optim import LARS, SGD
        assert OPTIMIZERS.get("sgd") is SGD
        assert OPTIMIZERS.get("LARS") is LARS

    def test_lr_schedules(self):
        from repro.optim.registry import LR_SCHEDULES
        assert {"ls", "gw", "pd", "constant"} <= set(LR_SCHEDULES.list())

    def test_networks(self):
        from repro.comm.network_model import NETWORKS
        network = NETWORKS.create("ethernet_10gbps")
        assert network.bandwidth_Bps == pytest.approx(10e9 / 8.0)

    def test_callbacks(self):
        from repro.core.callbacks import CALLBACKS, Callback
        assert {"progress", "checkpoint", "early_stopping"} <= set(CALLBACKS.list())
        assert issubclass(CALLBACKS.get("early_stopping"), Callback)

    def test_unknown_compressor_suggestion(self):
        from repro.compress.registry import get_compressor
        with pytest.raises(KeyError, match="did you mean 'topk'"):
            get_compressor("topk2")
