"""Compressed parameter exchange for the decentralized strategies, plus the
sync-subsystem bugfix sweep: wire-payload corruption, step-phase validation
ordering, max-degree wire accounting, and mid-period checkpoint resume."""

import copy
import json

import numpy as np
import pytest

from repro.comm.inprocess import InProcessWorld
from repro.comm.topology import get_topology
from repro.compress.param_delta import ParameterDeltaCodec
from repro.compress.registry import get_compressor
from repro.core.callbacks import Callback
from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.flatten import flatten_parameters
from repro.core.timeline import SyncReport
from repro.core.trainer import DistributedTrainer, TrainerConfig
from repro.sync import SyncSpec, get_aggregator
from repro.sync.strategies import AllreduceStrategy, GossipStrategy, LocalSGDStrategy


def make_config(model: str, world_size: int, fused: bool, *, algorithm: str = "dense",
                sync=None, epochs: int = 1, iterations: int = 3) -> TrainerConfig:
    return TrainerConfig(model=model, preset="tiny", algorithm=algorithm,
                         world_size=world_size, epochs=epochs,
                         max_iterations_per_epoch=iterations, batch_size=8,
                         num_train=256, num_test=32,
                         fused_pipeline=fused, sync=sync)


def final_params(trainer: DistributedTrainer) -> np.ndarray:
    return np.stack([flatten_parameters(m) for m in trainer.replicas])


def train_params(config: TrainerConfig, legacy_cls=None) -> np.ndarray:
    trainer = DistributedTrainer(config)
    if legacy_cls is not None:
        spec = trainer.sync_spec
        topology = get_topology(spec.topology) if legacy_cls.needs_topology else None
        trainer.sync_strategy = legacy_cls().bind(
            trainer.world, trainer.compressors, get_aggregator(spec.aggregator),
            topology=topology, period=spec.period)
    trainer.train()
    return final_params(trainer)


class ReportRecorder(Callback):
    def __init__(self):
        self.reports = []

    def on_iteration_end(self, state) -> None:
        self.reports.append(state.report)


# --------------------------------------------------------------------- #
# Pre-compression reference strategies, copied verbatim from commit
# ecc909d (sync/strategies.py) for the paths the configs below exercise
# (H > 1 local SGD, gossip; no corruption).  They are the executable
# specification that `parameter_compression: "none"` must reproduce bit
# for bit on both trainer paths.
# --------------------------------------------------------------------- #
class LegacyGossipReference(GossipStrategy):
    def exchange(self, gradients):
        self._step += 1
        return list(gradients), self._passthrough_report()

    def exchange_batched(self, G):
        self._step += 1
        return G, self._passthrough_report()

    def post_step(self, param_rows):
        world, topology = self.world, self.topology
        nbytes = float(np.asarray(param_rows[0]).nbytes)
        comm_before = world.simulated_comm_time
        gathered = world.neighbor_exchange(list(param_rows), topology)
        comm_time = world.simulated_comm_time - comm_before
        for rank, neighborhood in enumerate(gathered):
            param_rows[rank][...] = self.aggregator.combine(np.stack(neighborhood))
        mean_degree = topology.mean_degree(world.world_size)
        return SyncReport(compression_time_s=0.0, comm_time_s=float(comm_time),
                          wire_bits_per_worker=mean_degree * 8.0 * nbytes,
                          exchange="neighbor_exchange")


class LegacyLocalSGDReference(LocalSGDStrategy):
    def exchange(self, gradients):
        assert self.period > 1
        self._step += 1
        return list(gradients), self._passthrough_report()

    def exchange_batched(self, G):
        assert self.period > 1
        self._step += 1
        return G, self._passthrough_report()

    def post_step(self, param_rows):
        if self.period == 1 or self._step % self.period != 0:
            return None
        vectors = list(param_rows)
        results, report = self._aggregate_global(vectors)
        for row, result in zip(param_rows, results):
            row[...] = result
        return report


GOSSIP_NONE = {"strategy": "gossip", "topology": "ring",
               "parameter_compression": "none"}
LOCAL_SGD_NONE = {"strategy": "local_sgd", "period": 2,
                  "parameter_compression": "none"}


class TestNoneIsBitIdenticalToPreCompressionBehaviour:
    """Acceptance: parameter_compression="none" reproduces the
    pre-compression strategies bit for bit, fused + seed, P in {2, 4, 8}."""

    @pytest.mark.parametrize("world_size", [2, 4, 8])
    @pytest.mark.parametrize("fused", [True, False], ids=["fused", "seed"])
    def test_gossip(self, world_size, fused):
        config = make_config("fnn3", world_size, fused, sync=GOSSIP_NONE)
        np.testing.assert_array_equal(
            train_params(config),
            train_params(config, legacy_cls=LegacyGossipReference))

    @pytest.mark.parametrize("world_size", [2, 4, 8])
    @pytest.mark.parametrize("fused", [True, False], ids=["fused", "seed"])
    def test_local_sgd(self, world_size, fused):
        config = make_config("fnn3", world_size, fused, sync=LOCAL_SGD_NONE,
                             iterations=4)
        np.testing.assert_array_equal(
            train_params(config),
            train_params(config, legacy_cls=LegacyLocalSGDReference))

    @pytest.mark.parametrize("fused", [True, False], ids=["fused", "seed"])
    def test_omitting_the_field_equals_explicit_none(self, fused):
        explicit = make_config("fnn3", 4, fused, sync=GOSSIP_NONE)
        omitted = make_config("fnn3", 4, fused,
                              sync={"strategy": "gossip", "topology": "ring"})
        np.testing.assert_array_equal(train_params(explicit), train_params(omitted))


# --------------------------------------------------------------------- #
# The delta codec itself
# --------------------------------------------------------------------- #
class TestParameterDeltaCodec:
    def make_rows(self, P=3, n=40, seed=0):
        return np.random.default_rng(seed).standard_normal((P, n)).astype(np.float32)

    def test_first_exchange_is_a_dense_bootstrap(self):
        """The first sync has no references to delta against: it ships the
        dense parameters (priced 32n) and its estimates are exact, for any
        compressor — the snapshot a joining worker would receive."""
        codec = ParameterDeltaCodec([get_compressor("topk", ratio=0.01)
                                     for _ in range(3)])
        rows = self.make_rows()
        payloads, estimates, bits = codec.encode(rows)
        assert not codec.bootstrapped
        assert bits == 32.0 * rows.shape[1]
        np.testing.assert_array_equal(estimates, rows)
        np.testing.assert_array_equal(np.stack(payloads), rows)
        codec.advance(estimates)
        assert codec.bootstrapped
        # From the second exchange on, payloads are compressed deltas.
        _p, _e, bits = codec.encode(rows)
        assert bits == codec.wire_bits(rows.shape[1]) < 32.0 * rows.shape[1]

    def test_dense_delta_round_trip_is_exact(self):
        codec = ParameterDeltaCodec([get_compressor("dense") for _ in range(3)])
        rows = self.make_rows()
        _payloads, estimates, _bits = codec.encode(rows)
        codec.advance(estimates)
        shifted = rows + np.float32(0.25)
        _payloads, estimates, _bits = codec.encode(shifted)
        np.testing.assert_allclose(estimates, shifted, rtol=1e-6, atol=1e-7)

    @pytest.mark.parametrize("algorithm,kwargs", [
        ("topk", {"ratio": 0.25}),
        ("a2sgd", {}),
        # Error feedback needs a contractive compressor; QSGD is contractive
        # only when levels >= sqrt(bucket_size) (see the codec docstring).
        ("qsgd", {"levels": 16, "bucket_size": 64}),
    ])
    def test_error_feedback_converges_under_sync_dynamics(self, algorithm, kwargs):
        """The recursion the strategies actually run: each sync snaps the
        parameters to the aggregated estimates, then local progress moves
        them.  Estimates must track the parameters with shrinking error —
        the untransmitted mass is fed back, not lost."""
        codec = ParameterDeltaCodec(
            [get_compressor(algorithm, **kwargs) for _ in range(2)])
        rng = np.random.default_rng(1)
        x = rng.standard_normal((2, 64)).astype(np.float32)
        step = (rng.standard_normal((2, 64)) * 0.01).astype(np.float32)
        codec.advance(codec.encode(x)[1])               # dense bootstrap round
        errors = []
        for _ in range(40):
            _payloads, estimates, _bits = codec.encode(x)
            codec.advance(estimates)
            combined = estimates.mean(axis=0)
            x = np.stack([combined, combined]) + step
            errors.append(float(np.abs(estimates - x).max()))
        assert errors[-1] < 0.5 * errors[0]
        assert max(errors) <= 2.0 * errors[0]           # never amplifies

    def test_references_advance_only_on_advance(self):
        codec = ParameterDeltaCodec([get_compressor("topk", ratio=0.5)
                                     for _ in range(2)])
        rows = self.make_rows(P=2)
        codec.encode(rows)
        assert not codec.bootstrapped                   # encode alone: no advance
        _p, estimates, _bits = codec.encode(rows)
        codec.advance(estimates)
        np.testing.assert_array_equal(codec._references, estimates)

    def test_state_arrays_round_trip(self):
        make = lambda: ParameterDeltaCodec(
            [get_compressor("topk", ratio=0.25) for _ in range(2)])
        codec = make()
        rows = self.make_rows(P=2)
        for _ in range(3):
            _p, estimates, _bits = codec.encode(rows)
            codec.advance(estimates)
        fresh = make()
        fresh.load_state_arrays(codec.state_arrays())
        np.testing.assert_array_equal(fresh._references, codec._references)
        for a, b in zip(fresh.compressors, codec.compressors):
            np.testing.assert_array_equal(a._residual, b._residual)
        # Identical state produces identical next payloads/estimates.
        _pa, ea, _ba = codec.encode(rows)
        _pb, eb, _bb = fresh.encode(rows)
        np.testing.assert_array_equal(ea, eb)

    def test_reset_clears_references_and_residuals(self):
        codec = ParameterDeltaCodec([get_compressor("topk", ratio=0.25)
                                     for _ in range(2)])
        rows = self.make_rows(P=2)
        for _ in range(2):                              # bootstrap + one delta
            _p, estimates, _bits = codec.encode(rows)
            codec.advance(estimates)
        codec.reset()
        assert codec._references is None
        assert all(c._residual is None for c in codec.compressors)


# --------------------------------------------------------------------- #
# Compressed runs: traffic accounting + end-to-end training
# --------------------------------------------------------------------- #
GOSSIP_TOPK = {"strategy": "gossip", "topology": "ring",
               "parameter_compression": "topk",
               "parameter_compression_kwargs": {"ratio": 0.01}}
LOCAL_SGD_QSGD = {"strategy": "local_sgd", "period": 2,
                  "parameter_compression": "qsgd"}


class TestCompressedParameterExchange:
    def test_gossip_topk_reports_reduced_wire_bits(self):
        """Acceptance: the compressor's actual bits — not 32n — show up in
        wire_bits_per_iteration AND the per-iteration SyncReport."""
        trainer = DistributedTrainer(make_config("fnn3", 4, True, sync=GOSSIP_TOPK))
        recorder = ReportRecorder()
        trainer.callbacks.append(recorder)
        trainer.train()
        n = trainer.num_parameters
        k = max(1, int(round(0.01 * n)))
        assert trainer.wire_bits_per_iteration == 2 * 32.0 * k       # ring: degree 2
        assert trainer.wire_bits_per_iteration < 2 * 32.0 * n
        for report in recorder.reports:
            assert report.exchange == "local+compressed_neighbor_exchange"
        # First sync is the one-time dense reference bootstrap; every later
        # sync ships the compressor's actual bits.
        assert recorder.reports[0].wire_bits_per_worker == 2 * 32.0 * n
        for report in recorder.reports[1:]:
            assert report.wire_bits_per_worker == 2 * 32.0 * k
        assert trainer.world.stats.collective_counts["neighbor_exchange"] == 3

    def test_local_sgd_qsgd_reports_reduced_wire_bits(self):
        trainer = DistributedTrainer(make_config("fnn3", 4, True,
                                                 sync=LOCAL_SGD_QSGD, iterations=4))
        recorder = ReportRecorder()
        trainer.callbacks.append(recorder)
        trainer.train()
        n = trainer.num_parameters
        qsgd_bits = 2.8 * n + 32.0
        assert trainer.wire_bits_per_iteration == qsgd_bits / 2
        exchanges = [r.exchange for r in recorder.reports]
        assert exchanges == ["local", "local+compressed_parameter_allgather"] * 2
        sync_reports = [r for r in recorder.reports if "compressed" in r.exchange]
        # Dense bootstrap on the first sync, compressed bits afterwards.
        assert sync_reports[0].wire_bits_per_worker == 32.0 * n
        assert sync_reports[1].wire_bits_per_worker == qsgd_bits
        assert all(r.comm_time_s > 0.0 for r in sync_reports)
        # Payload allgathers happen only on the 2 sync points (+1 finalize
        # allreduce at the end of training).
        assert trainer.world.stats.collective_counts["allgather"] == 2

    @pytest.mark.parametrize("sync", [GOSSIP_TOPK, LOCAL_SGD_QSGD],
                             ids=["gossip+topk", "local_sgd+qsgd"])
    def test_fused_and_seed_paths_agree(self, sync):
        fused = train_params(make_config("fnn3", 4, True, sync=sync, iterations=4))
        seed = train_params(make_config("fnn3", 4, False, sync=sync, iterations=4))
        np.testing.assert_allclose(fused, seed, rtol=2e-5, atol=2e-6)

    def test_dense_parameter_compression_stays_close_to_uncompressed(self):
        """The dense "compressor" transmits the full delta, so delta coding
        itself adds only float32 rounding."""
        dense = {"strategy": "gossip", "topology": "ring",
                 "parameter_compression": "dense"}
        a = train_params(make_config("fnn3", 4, True, sync=dense))
        b = train_params(make_config("fnn3", 4, True, sync=GOSSIP_NONE))
        np.testing.assert_allclose(a, b, rtol=2e-4, atol=2e-5)

    def test_gossip_gaussiank_ragged_payloads_run(self):
        """Gaussian-K selects a different k per rank — the neighbour exchange
        must accept ragged payloads."""
        sync = {"strategy": "gossip", "topology": "ring",
                "parameter_compression": "gaussiank",
                "parameter_compression_kwargs": {"ratio": 0.05}}
        trainer = DistributedTrainer(make_config("fnn3", 4, True, sync=sync,
                                                 iterations=2))
        trainer.train()
        assert trainer.world.stats.collective_counts["neighbor_exchange"] == 2

    def test_robust_aggregator_composes_with_compressed_parameters(self):
        sync = {**GOSSIP_TOPK, "aggregator": "coordinate_median"}
        trainer = DistributedTrainer(make_config("fnn3", 4, True, sync=sync,
                                                 iterations=2))
        trainer.train()
        P = final_params(trainer)
        assert np.all(np.isfinite(P))

    def test_compressed_gossip_converges_toward_consensus(self):
        """On a fully-connected graph with generous top-k, compressed gossip
        training stays close to the dense-gossip trajectory."""
        dense_sync = {"strategy": "gossip", "topology": "fully_connected"}
        topk_sync = {**dense_sync, "parameter_compression": "topk",
                     "parameter_compression_kwargs": {"ratio": 0.5}}
        a = train_params(make_config("fnn3", 4, True, sync=dense_sync, epochs=2))
        b = train_params(make_config("fnn3", 4, True, sync=topk_sync, epochs=2))
        assert float(np.abs(a - b).max()) < 0.05


# --------------------------------------------------------------------- #
# Bugfix: Byzantine corruption poisons the wire payload, not the local
# gradients, on parameter-phase strategies.
# --------------------------------------------------------------------- #
class TestParameterPhaseCorruption:
    def build(self, spec_kwargs, world_size=4):
        spec = SyncSpec(**spec_kwargs)
        world = InProcessWorld(world_size)
        compressors = [get_compressor("dense") for _ in range(world_size)]
        return spec.build(world, compressors)

    def test_gossip_leaves_local_gradients_clean(self):
        strategy = self.build({"strategy": "gossip", "topology": "ring",
                               "corrupt_ranks": [0]})
        G = np.ones((4, 8), dtype=np.float32)
        out, _report = strategy.exchange_batched(G)
        np.testing.assert_array_equal(out, np.ones((4, 8), dtype=np.float32))
        gradients = [np.ones(8, dtype=np.float32) for _ in range(4)]
        out_list, _report = strategy.exchange(gradients)
        for g in out_list:
            np.testing.assert_array_equal(g, np.ones(8, dtype=np.float32))

    def test_gossip_sign_flip_reaches_neighbours_through_the_aggregator(self):
        """Regression: the Byzantine rank's flip arrives at its neighbours in
        the aggregated parameters — and its own row is poisoned only through
        the aggregation of its corrupted payload, not by a local flip."""
        strategy = self.build({"strategy": "gossip", "topology": "ring",
                               "corrupt_ranks": [0]})
        strategy.exchange_batched(np.zeros((4, 4), dtype=np.float32))
        rows = [np.full(4, float(p + 1), dtype=np.float32) for p in range(4)]
        strategy.post_step(rows)
        # Ring neighbourhoods (closed): rank1 = {0,1,2} with rank0 staging -1.
        np.testing.assert_allclose(rows[1], np.full(4, (-1 + 2 + 3) / 3))
        np.testing.assert_allclose(rows[3], np.full(4, (3 + 4 - 1) / 3))
        # The corrupt rank's own result also comes from the aggregator (its
        # staged payload included), NOT from overwriting its local state.
        np.testing.assert_allclose(rows[0], np.full(4, (4 - 1 + 2) / 3))

    def test_local_sgd_corruption_applies_only_at_sync_points(self):
        strategy = self.build({"strategy": "local_sgd", "period": 2,
                               "corrupt_ranks": [1]}, world_size=2)
        gradients = [np.ones(4, dtype=np.float32) for _ in range(2)]
        out, _ = strategy.exchange(gradients)
        np.testing.assert_array_equal(out[1], np.ones(4, dtype=np.float32))
        assert strategy.post_step(
            [np.ones(4, np.float32), np.ones(4, np.float32)]) is None
        strategy.exchange(gradients)                      # step 2: sync point
        rows = [np.full(4, 1.0, dtype=np.float32), np.full(4, 2.0, dtype=np.float32)]
        report = strategy.post_step(rows)
        assert report is not None
        # mean(1, -2): the flip reached the aggregation, both ranks adopt it.
        np.testing.assert_allclose(rows[0], np.full(4, -0.5))
        np.testing.assert_allclose(rows[1], np.full(4, -0.5))

    def test_corruption_applies_to_compressed_payloads_too(self):
        strategy = self.build({"strategy": "gossip", "topology": "fully_connected",
                               "parameter_compression": "dense",
                               "corrupt_ranks": [0]}, world_size=2)
        strategy.exchange_batched(np.zeros((2, 4), dtype=np.float32))
        rows = [np.full(4, 2.0, dtype=np.float32), np.full(4, 4.0, dtype=np.float32)]
        strategy.post_step(rows)
        # Estimates are (-2, 4); both closed neighbourhoods see both ranks.
        np.testing.assert_allclose(rows[0], np.full(4, 1.0))
        np.testing.assert_allclose(rows[1], np.full(4, 1.0))

    def test_trainer_paths_agree_under_gossip_corruption(self):
        sync = {"strategy": "gossip", "topology": "ring", "corrupt_ranks": [1],
                "corruption": "scale", "corruption_scale": -3.0}
        fused = train_params(make_config("fnn3", 4, True, sync=sync))
        seed = train_params(make_config("fnn3", 4, False, sync=sync))
        np.testing.assert_allclose(fused, seed, rtol=2e-5, atol=2e-6)


# --------------------------------------------------------------------- #
# Bugfix: a rejected exchange must not advance the step phase.
# --------------------------------------------------------------------- #
class TestStepPhaseValidationOrdering:
    def build(self, spec_kwargs, world_size=2):
        spec = SyncSpec(**spec_kwargs)
        world = InProcessWorld(world_size)
        compressors = [get_compressor("dense") for _ in range(world_size)]
        return spec.build(world, compressors)

    @pytest.mark.parametrize("spec_kwargs", [
        {"strategy": "allreduce"},
        {"strategy": "local_sgd", "period": 2},
        {"strategy": "gossip", "topology": "ring"},
    ], ids=["allreduce", "local_sgd", "gossip"])
    def test_rejected_calls_leave_step_unchanged(self, spec_kwargs):
        strategy = self.build(spec_kwargs)
        with pytest.raises(ValueError, match="one gradient per rank"):
            strategy.exchange([np.ones(4, dtype=np.float32)])
        assert strategy._step == 0
        with pytest.raises(ValueError, match="equal length"):
            strategy.exchange([np.ones(4, dtype=np.float32),
                               np.ones(5, dtype=np.float32)])
        assert strategy._step == 0
        with pytest.raises(ValueError, match="gradient matrix"):
            strategy.exchange_batched(np.ones((3, 4), dtype=np.float32))
        assert strategy._step == 0
        strategy.exchange([np.ones(4, dtype=np.float32),
                           np.ones(4, dtype=np.float32)])
        assert strategy._step == 1

    def test_local_sgd_period_arithmetic_survives_a_rejected_call(self):
        """A failed call between syncs must not shift the sync schedule."""
        strategy = self.build({"strategy": "local_sgd", "period": 2})
        good = [np.ones(4, dtype=np.float32), np.ones(4, dtype=np.float32)]
        strategy.exchange(good)
        assert not strategy.post_step_pending()
        with pytest.raises(ValueError):
            strategy.exchange(good[:1])
        assert not strategy.post_step_pending()
        strategy.exchange(good)
        assert strategy.post_step_pending()               # step 2 = sync point


# --------------------------------------------------------------------- #
# Bugfix: gossip traffic accounting matches the max-degree pricing.
# --------------------------------------------------------------------- #
class TestGossipWireAccountingUsesMaxDegree:
    def test_star_hub_degree_prices_the_iteration(self):
        trainer = DistributedTrainer(make_config(
            "fnn3", 4, True, sync={"strategy": "gossip", "topology": "star"}))
        n = trainer.num_parameters
        # The α–β model charges the hub's P-1 sends, so the analytic traffic
        # must report the same critical path (mean degree would say 1.5).
        assert trainer.wire_bits_per_iteration == 3 * 32.0 * n

    def test_star_sync_report_matches_the_analytic_figure(self):
        trainer = DistributedTrainer(make_config(
            "fnn3", 4, True, sync={"strategy": "gossip", "topology": "star"},
            iterations=2))
        recorder = ReportRecorder()
        trainer.callbacks.append(recorder)
        trainer.train()
        n = trainer.num_parameters
        for report in recorder.reports:
            assert report.wire_bits_per_worker == 3 * 32.0 * n

    def test_ring_is_unchanged_because_mean_equals_max(self):
        trainer = DistributedTrainer(make_config(
            "fnn3", 4, True, sync={"strategy": "gossip", "topology": "ring"}))
        assert trainer.wire_bits_per_iteration == 2 * 32.0 * trainer.num_parameters


# --------------------------------------------------------------------- #
# Spec / CLI plumbing
# --------------------------------------------------------------------- #
class TestSyncSpecParameterCompression:
    def test_json_round_trip(self):
        spec = SyncSpec(strategy="gossip", topology="star",
                        parameter_compression="topk",
                        parameter_compression_kwargs={"ratio": 0.01})
        round_tripped = SyncSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert round_tripped == spec
        assert "param_compression=topk" in round_tripped.describe()

    def test_unknown_compressor_is_a_problem(self):
        problems = SyncSpec(strategy="gossip",
                            parameter_compression="warp").problems()
        assert any("parameter_compression" in p and "warp" in p for p in problems)

    def test_gradient_phase_strategies_reject_parameter_compression(self):
        problems = SyncSpec(parameter_compression="topk").problems()
        assert any("never exchanges parameters" in p for p in problems)
        problems = SyncSpec(strategy="local_sgd", period=1,
                            parameter_compression="topk").problems()
        assert any("never exchanges parameters" in p for p in problems)
        assert SyncSpec(strategy="local_sgd", period=4,
                        parameter_compression="topk").problems() == []

    def test_bad_kwargs_are_a_problem(self):
        problems = SyncSpec(strategy="gossip", parameter_compression="topk",
                            parameter_compression_kwargs={"ratio": 7.0}).problems()
        assert any("cannot be constructed" in p for p in problems)

    def test_kwargs_without_a_compressor_are_a_problem(self):
        problems = SyncSpec(strategy="gossip",
                            parameter_compression_kwargs={"ratio": 0.1}).problems()
        assert any("parameter_compression_kwargs" in p for p in problems)

    def test_bind_rejects_parameter_compressors_on_allreduce(self):
        world = InProcessWorld(2)
        compressors = [get_compressor("dense") for _ in range(2)]
        with pytest.raises(ValueError, match="never exchanges parameters"):
            AllreduceStrategy().bind(
                world, compressors, get_aggregator("mean"),
                parameter_compressors=[get_compressor("topk") for _ in range(2)])

    def test_strategy_switch_resets_parameter_compression(self):
        base = SyncSpec(strategy="gossip", topology="ring",
                        parameter_compression="topk",
                        parameter_compression_kwargs={"ratio": 0.01})
        merged = base.merged_with({"strategy": "allreduce"})
        assert merged["parameter_compression"] == "none"
        assert merged["parameter_compression_kwargs"] == {}
        # An alias is not a switch: the compressor survives.
        merged = base.merged_with({"strategy": "decentralized"})
        assert merged["parameter_compression"] == "topk"

    def test_cli_flag_merges_into_the_sync_section(self):
        from repro.cli import main
        out = main(["run", "--model", "fnn3", "--workers", "2", "--epochs", "1",
                    "--iterations", "2", "--algorithm", "dense",
                    "--sync", "gossip", "--topology", "ring",
                    "--param-compression", "topk"])
        assert out == 0

    def test_cli_rejects_unknown_parameter_compressor(self, capsys):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["run", "--sync", "gossip", "--param-compression", "warp"])
        assert "warp" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# Checkpoint: mid-period resume with residual + reference state.
# --------------------------------------------------------------------- #
class TestMidPeriodCheckpointResume:
    SYNC = {"strategy": "local_sgd", "period": 4,
            "parameter_compression": "topk",
            "parameter_compression_kwargs": {"ratio": 0.05}}

    @pytest.mark.parametrize("fused", [True, False], ids=["fused", "seed"])
    def test_resume_matches_uninterrupted_schedule_and_state(self, fused, tmp_path):
        # 6 iterations with H=4: the checkpoint lands mid-period (6 % 4 == 2).
        config = make_config("fnn3", 4, fused, sync=self.SYNC, iterations=6)
        trainer = DistributedTrainer(config)
        trainer.train()
        assert trainer.sync_strategy._step == 6
        path = save_checkpoint(trainer, tmp_path / "ckpt.npz")

        resumed = DistributedTrainer(config)
        load_checkpoint(resumed, path)
        original, restored = trainer.sync_strategy, resumed.sync_strategy
        assert restored._step == 6
        assert restored.post_step_pending() == original.post_step_pending() is False

        # Residual + reference state round-trips bit-exactly.
        np.testing.assert_array_equal(restored.parameter_codec._references,
                                      original.parameter_codec._references)
        for a, b in zip(restored.parameter_codec.compressors,
                        original.parameter_codec.compressors):
            np.testing.assert_array_equal(a._residual, b._residual)

        # Driving both strategies forward produces the same sync boundary
        # (iteration 8) — the non-boundary resume did not shift the phase.
        n = trainer.num_parameters
        G = np.zeros((4, n), dtype=np.float32)
        pending = {"original": [], "restored": []}
        rows = {"original": None, "restored": None}
        for label, strategy in (("original", original), ("restored", restored)):
            for _ in range(2):
                strategy.exchange_batched(G)
                pending[label].append(strategy.post_step_pending())
            vectors = [np.full(n, float(p + 1), dtype=np.float32) for p in range(4)]
            strategy.post_step(vectors)
            rows[label] = np.stack(vectors)
        assert pending["original"] == pending["restored"] == [False, True]
        # The boundary exchange itself is bit-identical: it consumed the
        # restored references and residuals.
        np.testing.assert_array_equal(rows["original"], rows["restored"])

    def test_uncompressed_checkpoints_still_load(self, tmp_path):
        config = make_config("fnn3", 2, True,
                             sync={"strategy": "local_sgd", "period": 3},
                             iterations=4)
        trainer = DistributedTrainer(config)
        trainer.train()
        path = save_checkpoint(trainer, tmp_path / "ckpt.npz")
        resumed = DistributedTrainer(config)
        load_checkpoint(resumed, path)
        assert resumed.sync_strategy._step == 4


# --------------------------------------------------------------------- #
# Non-contractive parameter compression: advisory note + build warning,
# never a validation failure (the QSGD-default end-to-end runs above must
# keep passing).
# --------------------------------------------------------------------- #
class TestNonContractiveCompressionWarning:
    def test_qsgd_defaults_are_flagged(self):
        from repro.compress import QSGDCompressor
        problem = QSGDCompressor().contraction_problem()
        assert problem is not None and "not contractive" in problem

    def test_contractive_qsgd_is_clean(self):
        from repro.compress import QSGDCompressor
        assert QSGDCompressor(levels=16, bucket_size=64).contraction_problem() is None

    def test_unbucketed_qsgd_is_flagged(self):
        from repro.compress import QSGDCompressor
        problem = QSGDCompressor(bucket_size=None).contraction_problem()
        assert problem is not None and "bucket_size=None" in problem

    def test_sparsifiers_are_contractive_by_construction(self):
        from repro.compress import TopKCompressor
        assert TopKCompressor(ratio=0.01).contraction_problem() is None
        assert get_compressor("dense").contraction_problem() is None

    def test_notes_flag_non_contractive_parameter_compression(self):
        spec = SyncSpec(strategy="local_sgd", period=2,
                        parameter_compression="qsgd")
        notes = spec.notes()
        assert len(notes) == 1
        assert notes[0].startswith("parameter_compression:")
        assert "not contractive" in notes[0]

    def test_notes_empty_for_contractive_configs(self):
        assert SyncSpec(strategy="local_sgd", period=2).notes() == []
        contractive = SyncSpec(
            strategy="local_sgd", period=2, parameter_compression="qsgd",
            parameter_compression_kwargs={"levels": 16, "bucket_size": 64})
        assert contractive.notes() == []
        topk = SyncSpec(strategy="gossip", topology="ring",
                        parameter_compression="topk",
                        parameter_compression_kwargs={"ratio": 0.01})
        assert topk.notes() == []

    def test_validate_still_passes_with_note(self):
        spec = SyncSpec(strategy="local_sgd", period=2,
                        parameter_compression="qsgd")
        assert spec.validate(world_size=4, algorithm="dense") is spec

    def test_build_emits_runtime_warning(self):
        spec = SyncSpec(strategy="local_sgd", period=2,
                        parameter_compression="qsgd")
        world = InProcessWorld(2)
        compressors = [get_compressor("dense") for _ in range(2)]
        with pytest.warns(RuntimeWarning, match="not contractive"):
            spec.build(world, compressors)

    def test_build_silent_for_contractive_config(self):
        import warnings as _warnings
        spec = SyncSpec(strategy="local_sgd", period=2,
                        parameter_compression="qsgd",
                        parameter_compression_kwargs={"levels": 16,
                                                      "bucket_size": 64})
        world = InProcessWorld(2)
        compressors = [get_compressor("dense") for _ in range(2)]
        with _warnings.catch_warnings():
            _warnings.simplefilter("error", RuntimeWarning)
            spec.build(world, compressors)
