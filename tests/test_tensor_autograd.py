"""Unit tests for the core Tensor type and reverse-mode autodiff."""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad, is_grad_enabled, tensor, zeros, ones, randn
from tests.conftest import check_gradient


class TestTensorBasics:
    def test_construction_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype == np.float32

    def test_float64_downcast_to_float32(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float32

    def test_integer_tensor_allowed_without_grad(self):
        t = Tensor(np.arange(5, dtype=np.int64))
        assert t.dtype == np.int64

    def test_integer_tensor_cannot_require_grad(self):
        with pytest.raises(ValueError):
            Tensor(np.arange(5, dtype=np.int64), requires_grad=True)

    def test_item_and_len(self):
        assert Tensor([3.5]).item() == pytest.approx(3.5)
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_detach_breaks_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        d = a.detach()
        assert not d.requires_grad
        assert np.shares_memory(d.data, a.data)

    def test_constructors(self):
        assert zeros(2, 3).shape == (2, 3)
        assert ones(4).data.sum() == pytest.approx(4.0)
        r = randn(5, rng=np.random.default_rng(0))
        r2 = randn(5, rng=np.random.default_rng(0))
        np.testing.assert_array_equal(r.data, r2.data)
        assert tensor([1.0]).shape == (1,)

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None


class TestBackwardMechanics:
    def test_backward_requires_grad(self):
        a = Tensor([1.0])
        with pytest.raises(RuntimeError):
            a.backward()

    def test_backward_nonscalar_needs_grad_argument(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = a * 2
        with pytest.raises(RuntimeError):
            out.backward()
        out = a * 2
        out.backward(np.ones(2))
        np.testing.assert_allclose(a.grad, [2.0, 2.0])

    def test_backward_grad_shape_mismatch(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = a * 3
        with pytest.raises(ValueError):
            out.backward(np.ones(3))

    def test_gradient_accumulates_across_backward_calls(self):
        a = Tensor([2.0], requires_grad=True)
        (a * 3).backward()
        (a * 3).backward()
        np.testing.assert_allclose(a.grad, [6.0])

    def test_diamond_graph_accumulates_once_per_path(self):
        a = Tensor([1.0], requires_grad=True)
        b = a * 2
        c = a * 3
        out = b + c
        out.backward()
        np.testing.assert_allclose(a.grad, [5.0])

    def test_reused_node_in_graph(self):
        a = Tensor([2.0], requires_grad=True)
        b = a * a          # a used twice by one op
        b.backward()
        np.testing.assert_allclose(a.grad, [4.0])

    def test_no_grad_disables_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = a * 2
        assert is_grad_enabled()
        assert not out.requires_grad
        assert out._backward is None

    def test_deep_chain_does_not_recurse(self):
        # The topological sort is iterative, so a long chain must not hit the
        # Python recursion limit.
        a = Tensor([1.0], requires_grad=True)
        out = a
        for _ in range(3000):
            out = out + 1.0
        out.backward()
        np.testing.assert_allclose(a.grad, [1.0])


class TestElementwiseOps:
    def test_add_gradients(self, rng):
        x = rng.standard_normal((3, 4))
        check_gradient(lambda t: (t + 2.0).sum(), x)

    def test_sub_and_rsub(self):
        a = Tensor([3.0], requires_grad=True)
        (5.0 - a).backward()
        np.testing.assert_allclose(a.grad, [-1.0])

    def test_mul_gradients(self, rng):
        x = rng.standard_normal((4,))
        check_gradient(lambda t: (t * t).sum(), x)

    def test_div_gradients(self, rng):
        x = rng.standard_normal((4,)) + 3.0
        check_gradient(lambda t: (1.0 / t).sum(), x)

    def test_neg(self):
        a = Tensor([1.0, -2.0], requires_grad=True)
        (-a).sum().backward()
        np.testing.assert_allclose(a.grad, [-1.0, -1.0])

    def test_pow_gradient(self, rng):
        x = np.abs(rng.standard_normal(5)) + 0.5
        check_gradient(lambda t: (t ** 3).sum(), x)

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_broadcast_add_reduces_gradient(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones((4,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, np.full(4, 3.0))

    def test_broadcast_scalar_operand(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        (a * 5.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 5.0))

    def test_broadcast_keepdims_axis(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((2, 1)), requires_grad=True)
        (a * b).sum().backward()
        assert b.grad.shape == (2, 1)
        np.testing.assert_allclose(b.grad, np.full((2, 1), 3.0))

    def test_comparisons_are_detached(self):
        a = Tensor([1.0, -1.0], requires_grad=True)
        mask = a > 0
        assert not mask.requires_grad
        np.testing.assert_allclose(mask.data, [1.0, 0.0])
        np.testing.assert_allclose((a >= 1.0).data, [1.0, 0.0])
        np.testing.assert_allclose((a < 0).data, [0.0, 1.0])
        np.testing.assert_allclose((a <= -1.0).data, [0.0, 1.0])


class TestUnaryOps:
    def test_exp_gradient(self, rng):
        check_gradient(lambda t: t.exp().sum(), rng.standard_normal(5))

    def test_log_gradient(self, rng):
        check_gradient(lambda t: t.log().sum(), np.abs(rng.standard_normal(5)) + 1.0)

    def test_sqrt_gradient(self, rng):
        check_gradient(lambda t: t.sqrt().sum(), np.abs(rng.standard_normal(5)) + 1.0)

    def test_tanh_gradient(self, rng):
        check_gradient(lambda t: t.tanh().sum(), rng.standard_normal(5))

    def test_sigmoid_gradient(self, rng):
        check_gradient(lambda t: t.sigmoid().sum(), rng.standard_normal(5))

    def test_sigmoid_extreme_values_no_overflow(self):
        a = Tensor([-500.0, 500.0])
        out = a.sigmoid()
        np.testing.assert_allclose(out.data, [0.0, 1.0], atol=1e-6)

    def test_relu_gradient_masks_negative(self):
        a = Tensor([-1.0, 2.0], requires_grad=True)
        a.relu().sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])

    def test_abs_gradient(self):
        a = Tensor([-2.0, 3.0], requires_grad=True)
        a.abs().sum().backward()
        np.testing.assert_allclose(a.grad, [-1.0, 1.0])

    def test_clip_gradient(self):
        a = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_all(self, rng):
        check_gradient(lambda t: t.sum(), rng.standard_normal((3, 3)))

    def test_sum_axis(self):
        a = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3), requires_grad=True)
        out = a.sum(axis=0)
        assert out.shape == (3,)
        out.backward(np.ones(3))
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_sum_axis_keepdims(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)

    def test_mean_gradient(self, rng):
        check_gradient(lambda t: t.mean(), rng.standard_normal((4, 2)))

    def test_mean_axis_value(self):
        a = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        np.testing.assert_allclose(a.mean(axis=1).data, [1.0, 4.0])

    def test_var_matches_numpy(self, rng):
        x = rng.standard_normal((5, 7)).astype(np.float32)
        t = Tensor(x)
        np.testing.assert_allclose(t.var().item(), x.var(), rtol=1e-5)

    def test_max_gradient_no_axis(self):
        a = Tensor([1.0, 5.0, 3.0], requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_max_gradient_with_axis_and_ties(self):
        a = Tensor(np.array([[2.0, 2.0], [1.0, 3.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        # Ties split the gradient so totals stay exact.
        np.testing.assert_allclose(a.grad.sum(), 2.0)
        np.testing.assert_allclose(a.grad[1], [0.0, 1.0])


class TestShapeOps:
    def test_reshape_roundtrip_gradient(self, rng):
        check_gradient(lambda t: (t.reshape(6) * 2).sum(), rng.standard_normal((2, 3)))

    def test_reshape_tuple_argument(self):
        a = Tensor(np.zeros((2, 3)))
        assert a.reshape((3, 2)).shape == (3, 2)

    def test_flatten(self):
        a = Tensor(np.zeros((2, 3, 4)))
        assert a.flatten(start_dim=1).shape == (2, 12)

    def test_transpose_gradient(self, rng):
        check_gradient(lambda t: (t.T * Tensor(np.ones((3, 2)))).sum(),
                       rng.standard_normal((2, 3)))

    def test_transpose_with_axes(self):
        a = Tensor(np.zeros((2, 3, 4)), requires_grad=True)
        out = a.transpose((2, 0, 1))
        assert out.shape == (4, 2, 3)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)

    def test_swapaxes(self):
        a = Tensor(np.zeros((2, 3, 4)))
        assert a.swapaxes(0, 2).shape == (4, 3, 2)

    def test_getitem_int_index(self):
        a = Tensor(np.arange(12, dtype=np.float32).reshape(3, 4), requires_grad=True)
        a[1].sum().backward()
        expected = np.zeros((3, 4))
        expected[1] = 1.0
        np.testing.assert_allclose(a.grad, expected)

    def test_getitem_slice(self):
        a = Tensor(np.arange(10, dtype=np.float32), requires_grad=True)
        a[2:5].sum().backward()
        expected = np.zeros(10)
        expected[2:5] = 1.0
        np.testing.assert_allclose(a.grad, expected)

    def test_getitem_fancy_index_repeats_accumulate(self):
        a = Tensor(np.arange(4, dtype=np.float32), requires_grad=True)
        idx = np.array([0, 0, 2])
        a[idx].sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 0.0, 1.0, 0.0])

    def test_pad2d_gradient(self):
        a = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        padded = a.pad2d(1)
        assert padded.shape == (1, 1, 4, 4)
        padded.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((1, 1, 2, 2)))

    def test_pad2d_zero_is_identity(self):
        a = Tensor(np.ones((1, 1, 2, 2)))
        assert a.pad2d(0) is a


class TestMatmulAndCombination:
    def test_matmul_2d_gradient(self, rng):
        w = rng.standard_normal((3, 2)).astype(np.float32)
        check_gradient(lambda t: (t @ Tensor(w)).sum(), rng.standard_normal((4, 3)))

    def test_matmul_gradient_wrt_second_operand(self, rng):
        x = Tensor(rng.standard_normal((4, 3)).astype(np.float32))
        w = Tensor(rng.standard_normal((3, 2)).astype(np.float32), requires_grad=True)
        (x @ w).sum().backward()
        expected = x.data.T @ np.ones((4, 2))
        np.testing.assert_allclose(w.grad, expected, rtol=1e-5)

    def test_matmul_vector_rhs(self, rng):
        a = Tensor(rng.standard_normal((3, 4)).astype(np.float32), requires_grad=True)
        v = Tensor(rng.standard_normal(4).astype(np.float32))
        (a @ v).sum().backward()
        np.testing.assert_allclose(a.grad, np.tile(v.data, (3, 1)), rtol=1e-5)

    def test_matmul_batched(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4)).astype(np.float32), requires_grad=True)
        b = Tensor(rng.standard_normal((2, 4, 5)).astype(np.float32), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (2, 4, 5)

    def test_concatenate_gradient_split(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(2), requires_grad=True)
        out = Tensor.concatenate([a, b])
        assert out.shape == (5,)
        out.backward(np.arange(5, dtype=np.float32))
        np.testing.assert_allclose(a.grad, [0, 1, 2])
        np.testing.assert_allclose(b.grad, [3, 4])

    def test_stack_gradient(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        out = Tensor.stack([a, b], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, np.ones(3))

    def test_where_gradient_routes_by_condition(self):
        cond = np.array([True, False, True])
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        Tensor.where(cond, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])
