"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCLIParsing:
    def test_requires_a_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_run_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            main(["run", "--model", "alexnet"])

    def test_run_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            main(["run", "--algorithm", "zip"])


class TestCLICommands:
    def test_info_lists_models_and_compressors(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "lstm_ptb" in out
        assert "a2sgd" in out
        assert "66,034,000" in out

    def test_run_prints_convergence_and_writes_json(self, capsys, tmp_path):
        output = tmp_path / "result.json"
        code = main(["run", "--model", "fnn3", "--algorithm", "a2sgd", "--workers", "2",
                     "--epochs", "2", "--iterations", "4", "--output", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "bits/worker/iteration" in out
        assert output.exists()
        payload = json.loads(output.read_text())
        assert payload["wire_bits_per_iteration"] == 64.0

    def test_sweep_command(self, capsys, tmp_path):
        output = tmp_path / "sweep.json"
        code = main(["sweep", "--model", "fnn3", "--workers", "2", "--algorithms",
                     "dense", "a2sgd", "--epochs", "2", "--output", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 workers" in out
        data = json.loads(output.read_text())
        assert set(data["2"]) == {"dense", "a2sgd"}

    def test_cost_command(self, capsys, tmp_path):
        output = tmp_path / "cost.json"
        code = main(["cost", "--models", "lstm_ptb", "--algorithms", "dense", "a2sgd",
                     "--workers", "2", "8", "--output", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "Table 2" in out
        data = json.loads(output.read_text())
        assert "lstm_ptb" in data

    def test_compare_command(self, capsys):
        code = main(["compare", "--size", "20000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "a2sgd" in out and "dense" in out and "dgc" in out


class TestConfigDrivenCLI:
    def write_spec(self, tmp_path, **overrides):
        payload = {"model": "fnn3", "algorithm": "a2sgd", "world_size": 2, "epochs": 2,
                   "max_iterations_per_epoch": 4, "batch_size": 16, "seed": 0}
        payload.update(overrides)
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(payload))
        return path

    def test_run_from_config_matches_flag_run(self, capsys, tmp_path):
        path = self.write_spec(tmp_path)
        assert main(["run", "--config", str(path)]) == 0
        from_config = capsys.readouterr().out
        assert main(["run", "--model", "fnn3", "--algorithm", "a2sgd", "--workers", "2",
                     "--epochs", "2", "--iterations", "4", "--batch-size", "16",
                     "--seed", "0"]) == 0
        from_flags = capsys.readouterr().out
        # Seed-for-seed: the convergence table (losses and metric) must be
        # identical; only the wall-time part of the title may differ.
        assert from_config.splitlines()[1:] == from_flags.splitlines()[1:]

    def test_flags_override_config(self, capsys, tmp_path):
        path = self.write_spec(tmp_path, epochs=2)
        assert main(["run", "--config", str(path), "--epochs", "1"]) == 0
        out = capsys.readouterr().out
        # Only one epoch row: the explicit flag overrode the spec's epochs=2.
        data_rows = [line for line in out.splitlines()
                     if line and line.split("|")[0].strip().isdigit()]
        assert len(data_rows) == 1

    def test_run_preset_eval_every_and_no_fused_flags(self, capsys):
        code = main(["run", "--preset", "tiny", "--workers", "2", "--epochs", "2",
                     "--iterations", "2", "--eval-every", "2", "--no-fused"])
        assert code == 0
        out = capsys.readouterr().out
        assert "train loss" in out

    def test_run_rejects_invalid_config(self, capsys, tmp_path):
        path = self.write_spec(tmp_path, algorithm="zip")
        assert main(["run", "--config", str(path)]) == 1
        err = capsys.readouterr().err
        assert "unknown compressor 'zip'" in err

    def test_run_with_named_callback(self, capsys, tmp_path):
        path = self.write_spec(tmp_path, epochs=1, max_iterations_per_epoch=2)
        assert main(["run", "--config", str(path), "--callback", "progress"]) == 0

    def test_validate_ok(self, capsys, tmp_path):
        path = self.write_spec(tmp_path)
        assert main(["validate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "derived TrainerConfig" in out

    def test_validate_reports_problems_and_fails(self, capsys, tmp_path):
        path = self.write_spec(tmp_path, world_size=0, algorithm="zip")
        assert main(["validate", str(path)]) == 1
        err = capsys.readouterr().err
        assert "INVALID" in err
        assert "world_size" in err and "zip" in err

    def test_validate_missing_file(self, capsys, tmp_path):
        assert main(["validate", str(tmp_path / "nope.json")]) == 1
        assert "does not exist" in capsys.readouterr().err

    def test_validate_unknown_field_suggestion(self, capsys, tmp_path):
        path = tmp_path / "typo.json"
        path.write_text(json.dumps({"algorithmm": "a2sgd"}))
        assert main(["validate", str(path)]) == 1
        assert "did you mean 'algorithm'" in capsys.readouterr().err

    def test_info_lists_registries(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Datasets" in out
        assert "Trainer callbacks" in out
        assert "early_stopping" in out


class TestComponentsCommand:
    def test_lists_every_registry(self, capsys):
        assert main(["components"]) == 0
        out = capsys.readouterr().out
        for section in ("sync-strategies", "aggregators", "topologies",
                        "compressors", "models", "callbacks", "networks",
                        "optimizers", "lr-schedules", "datasets"):
            assert section in out
        # The new component families are discoverable by name.
        for name in ("allreduce", "local_sgd", "gossip", "geometric_median",
                     "trimmed_mean", "coordinate_median", "ring", "star",
                     "fully_connected"):
            assert name in out

    def test_single_registry_selection(self, capsys):
        assert main(["components", "--registry", "aggregators"]) == 0
        out = capsys.readouterr().out
        assert "geometric_median" in out
        assert "sync-strategies" not in out


class TestSyncFlags:
    def test_run_with_sync_flags(self, capsys):
        assert main(["run", "--model", "fnn3", "--algorithm", "dense",
                     "--workers", "2", "--epochs", "1", "--iterations", "2",
                     "--sync", "gossip", "--topology", "ring"]) == 0
        out = capsys.readouterr().out
        assert "strategy=gossip" in out and "topology=ring" in out

    def test_run_with_local_sgd_period(self, capsys):
        assert main(["run", "--model", "fnn3", "--workers", "2", "--epochs", "1",
                     "--iterations", "2", "--sync", "local_sgd",
                     "--sync-period", "2"]) == 0
        assert "period=2" in capsys.readouterr().out

    def test_sync_flags_merge_over_config(self, capsys, tmp_path):
        """Flags refine the spec file's sync section instead of replacing it."""
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "model": "fnn3", "algorithm": "dense", "world_size": 2, "epochs": 1,
            "max_iterations_per_epoch": 2, "batch_size": 16,
            "num_train": 128, "num_test": 32,
            "sync": {"strategy": "gossip", "topology": "star"}}))
        assert main(["run", "--config", str(path),
                     "--topology", "fully_connected"]) == 0
        out = capsys.readouterr().out
        assert "strategy=gossip" in out and "topology=fully_connected" in out

    def test_invalid_sync_combination_fails_validation(self, capsys):
        assert main(["run", "--model", "fnn3", "--algorithm", "topk",
                     "--workers", "2", "--epochs", "1", "--iterations", "2",
                     "--aggregator", "coordinate_median"]) == 1
        assert "allreduce-kind compressors only" in capsys.readouterr().err

    def test_validate_prints_sync_summary(self, capsys, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "model": "fnn3", "world_size": 4,
            "sync": {"strategy": "local_sgd", "period": 4}}))
        assert main(["validate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "strategy=local_sgd" in out and "period=4" in out

    def test_validate_reports_broken_sync_spec(self, capsys, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text(json.dumps({
            "model": "fnn3", "world_size": 2,
            "sync": {"strategy": "warp", "corrupt_ranks": [9]}}))
        assert main(["validate", str(path)]) == 1
        err = capsys.readouterr().err
        assert "unknown sync strategy" in err
        assert "out of range" in err

    def test_sync_flag_switches_strategy_dropping_old_knobs(self, capsys, tmp_path):
        """--sync to a different strategy resets the old strategy's specific
        fields instead of letting them invalidate the merged spec."""
        path = tmp_path / "gossip.json"
        path.write_text(json.dumps({
            "model": "fnn3", "algorithm": "dense", "world_size": 2, "epochs": 1,
            "max_iterations_per_epoch": 2, "batch_size": 16,
            "num_train": 128, "num_test": 32,
            "sync": {"strategy": "gossip", "topology": "star"}}))
        assert main(["run", "--config", str(path), "--sync", "allreduce"]) == 0
        out = capsys.readouterr().out
        assert "strategy=gossip" not in out

    def test_invalid_config_sync_with_flags_reports_spec_error(self, capsys, tmp_path):
        """A broken sync section plus sync flags fails cleanly, not with a
        raw traceback."""
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "model": "fnn3", "world_size": 2,
            "sync": {"perod": 3}}))
        assert main(["run", "--config", str(path), "--aggregator", "mean"]) == 1
        err = capsys.readouterr().err
        assert "did you mean 'period'" in err

    def test_sync_alias_not_treated_as_strategy_switch(self, capsys, tmp_path):
        """An aliased strategy name in the config ("localsgd") plus the
        canonical name on the flag must not reset the config's period."""
        path = tmp_path / "alias.json"
        path.write_text(json.dumps({
            "model": "fnn3", "algorithm": "dense", "world_size": 2, "epochs": 1,
            "max_iterations_per_epoch": 2, "batch_size": 16,
            "num_train": 128, "num_test": 32,
            "sync": {"strategy": "localsgd", "period": 4}}))
        assert main(["run", "--config", str(path), "--sync", "local_sgd"]) == 0
        assert "period=4" in capsys.readouterr().out

    def test_aggregator_switch_drops_stale_kwargs(self, capsys, tmp_path):
        """--aggregator to a different aggregator resets the config's
        aggregator_kwargs instead of failing construction."""
        path = tmp_path / "trimmed.json"
        path.write_text(json.dumps({
            "model": "fnn3", "algorithm": "dense", "world_size": 2, "epochs": 1,
            "max_iterations_per_epoch": 2, "batch_size": 16,
            "num_train": 128, "num_test": 32,
            "sync": {"aggregator": "trimmed_mean",
                     "aggregator_kwargs": {"trim_ratio": 0.25}}}))
        assert main(["run", "--config", str(path), "--aggregator", "mean"]) == 0

    def test_sync_flags_accept_registry_aliases(self, capsys):
        """CLI flags resolve aliases exactly like spec files do."""
        assert main(["run", "--model", "fnn3", "--algorithm", "dense",
                     "--workers", "2", "--epochs", "1", "--iterations", "2",
                     "--sync", "localsgd", "--sync-period", "2"]) == 0
        assert "strategy=local_sgd" in capsys.readouterr().out

    def test_sync_flag_rejects_unknown_name_with_suggestions(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--model", "fnn3", "--sync", "gosip"])
        assert "available" in capsys.readouterr().err


class TestSimulatedTimeFlags:
    def test_components_list_is_derived_from_the_registry_module(self):
        """The CLI's registry table is the live public_registries() mapping,
        not a hand-maintained copy — new registries appear automatically."""
        from repro.cli import COMPONENT_REGISTRIES
        from repro.registry import PUBLIC_REGISTRIES, public_registries

        assert COMPONENT_REGISTRIES is public_registries()
        assert COMPONENT_REGISTRIES is PUBLIC_REGISTRIES
        assert "compute-models" in COMPONENT_REGISTRIES

    def test_components_lists_compute_models(self, capsys):
        assert main(["components", "--registry", "compute-models"]) == 0
        out = capsys.readouterr().out
        for name in ("constant", "lognormal", "straggler",
                     "intermittent_dropout"):
            assert name in out

    def test_components_lists_async_strategies(self, capsys):
        assert main(["components", "--registry", "sync-strategies"]) == 0
        out = capsys.readouterr().out
        assert "async_ps" in out and "easgd" in out

    def test_run_async_ps_prints_simulated_time(self, capsys):
        assert main(["run", "--model", "fnn3", "--algorithm", "dense",
                     "--workers", "2", "--epochs", "1", "--iterations", "2",
                     "--batch-size", "8", "--sync", "async_ps",
                     "--compute-model", "lognormal", "--seed-clock", "5"]) == 0
        out = capsys.readouterr().out
        assert "simulated time:" in out
        assert "async_ps" in out and "lognormal" in out and "clock seed 5" in out

    def test_validate_rejects_invalid_staleness_bound(self, capsys, tmp_path):
        path = tmp_path / "bad_staleness.json"
        path.write_text(json.dumps({
            "model": "fnn3", "algorithm": "dense", "world_size": 2,
            "epochs": 1, "max_iterations_per_epoch": 2, "batch_size": 8,
            "num_train": 128, "num_test": 32,
            "sync": {"strategy": "async_ps",
                     "strategy_kwargs": {"staleness_bound": -1}}}))
        assert main(["validate", str(path)]) == 1
        err = capsys.readouterr().err
        assert "INVALID" in err
        assert "staleness_bound must be an integer >= 0" in err

    def test_validate_accepts_compute_model_spec(self, capsys, tmp_path):
        path = tmp_path / "sim.json"
        path.write_text(json.dumps({
            "model": "fnn3", "algorithm": "dense", "world_size": 2,
            "epochs": 1, "max_iterations_per_epoch": 2, "batch_size": 8,
            "num_train": 128, "num_test": 32, "clock_seed": 3,
            "compute_model": {"name": "straggler", "slowdown": 4.0},
            "sync": {"strategy": "easgd", "period": 2}}))
        assert main(["validate", str(path)]) == 0

    def test_validate_rejects_unknown_compute_model(self, capsys, tmp_path):
        path = tmp_path / "warp.json"
        path.write_text(json.dumps({
            "model": "fnn3", "algorithm": "dense", "world_size": 2,
            "epochs": 1, "max_iterations_per_epoch": 2, "batch_size": 8,
            "num_train": 128, "num_test": 32,
            "compute_model": "warp_speed"}))
        assert main(["validate", str(path)]) == 1
        assert "compute_model" in capsys.readouterr().err


class TestFaultFlags:
    BASE = ["run", "--model", "fnn3", "--algorithm", "dense", "--workers", "4",
            "--epochs", "1", "--iterations", "4", "--batch-size", "8"]

    def test_run_with_fault_model_prints_fault_summary(self, capsys):
        assert main(self.BASE + ["--fault-model", "crash_stop",
                                 "--seed-faults", "3"]) == 0
        out = capsys.readouterr().out
        assert "faults (crash_stop, seed 3)" in out
        assert "outage(s)" in out and "rejoin(s)" in out

    def test_healthy_run_prints_no_fault_line(self, capsys):
        assert main(self.BASE) == 0
        assert "faults (" not in capsys.readouterr().out

    def test_unknown_fault_model_rejected(self):
        with pytest.raises(SystemExit):
            main(self.BASE + ["--fault-model", "warp"])

    def test_fault_flags_merge_over_config(self, capsys, tmp_path):
        # Switching the model via the flag drops the spec's blackout kwargs
        # (they would make crash_stop unconstructible) but keeps its barrier
        # policy fields.
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "model": "fnn3", "algorithm": "dense", "world_size": 4,
            "epochs": 1, "max_iterations_per_epoch": 4, "batch_size": 8,
            "num_train": 128, "num_test": 32,
            "faults": {"model": "transient_blackout",
                       "model_kwargs": {"mean_down_s": 0.02,
                                        "mean_up_s": 0.03},
                       "barrier_timeout_s": 0.2},
            "fault_seed": 9}))
        assert main(["run", "--config", str(path),
                     "--fault-model", "crash_stop"]) == 0
        out = capsys.readouterr().out
        assert "faults (crash_stop, seed 9)" in out

    def test_fault_report_rides_in_output_json(self, capsys, tmp_path):
        output = tmp_path / "result.json"
        assert main(self.BASE + ["--fault-model", "crash_stop",
                                 "--output", str(output)]) == 0
        payload = json.loads(output.read_text())
        fault = payload["sim"]["fault"]
        assert fault["model"] == "crash_stop"
        assert sum(fault["down_transitions_per_rank"]) == 1

    def test_metrics_csv_flag_writes_fault_columns(self, capsys, tmp_path):
        csv_path = tmp_path / "metrics.csv"
        assert main(self.BASE + ["--sync", "async_ps", "--fault-model",
                                 "message_loss", "--metrics-csv",
                                 str(csv_path)]) == 0
        assert "metrics written to" in capsys.readouterr().out
        header = csv_path.read_text().splitlines()[0]
        assert "rejected_pushes,mean_staleness" in header
        assert header.endswith(
            "active_clients,cohort_fraction,unique_clients_seen")

    def test_components_lists_fault_models(self, capsys):
        assert main(["components", "--registry", "fault-models"]) == 0
        out = capsys.readouterr().out
        for name in ("crash_stop", "transient_blackout", "message_loss",
                     "slow_node"):
            assert name in out

    def test_validate_prints_faults_line(self, capsys, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "model": "fnn3", "algorithm": "dense", "world_size": 4,
            "epochs": 1, "max_iterations_per_epoch": 4, "batch_size": 8,
            "num_train": 128, "num_test": 32,
            "faults": {"model": "message_loss", "model_kwargs": {"p": 0.1}}}))
        assert main(["validate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "faults: model=message_loss" in out

    def test_validate_pins_malformed_fault_error(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "model": "fnn3", "world_size": 2,
            "faults": {"model": "transient_blackout",
                       "model_kwargs": {"mean_down_s": -1}}}))
        assert main(["validate", str(path)]) == 1
        err = capsys.readouterr().err
        assert ("fault model 'transient_blackout' cannot be constructed with "
                "{'mean_down_s': -1}: mean_down_s must be > 0, got -1.0") in err
