"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCLIParsing:
    def test_requires_a_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_run_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            main(["run", "--model", "alexnet"])

    def test_run_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            main(["run", "--algorithm", "zip"])


class TestCLICommands:
    def test_info_lists_models_and_compressors(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "lstm_ptb" in out
        assert "a2sgd" in out
        assert "66,034,000" in out

    def test_run_prints_convergence_and_writes_json(self, capsys, tmp_path):
        output = tmp_path / "result.json"
        code = main(["run", "--model", "fnn3", "--algorithm", "a2sgd", "--workers", "2",
                     "--epochs", "2", "--iterations", "4", "--output", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "bits/worker/iteration" in out
        assert output.exists()
        payload = json.loads(output.read_text())
        assert payload["wire_bits_per_iteration"] == 64.0

    def test_sweep_command(self, capsys, tmp_path):
        output = tmp_path / "sweep.json"
        code = main(["sweep", "--model", "fnn3", "--workers", "2", "--algorithms",
                     "dense", "a2sgd", "--epochs", "2", "--output", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 workers" in out
        data = json.loads(output.read_text())
        assert set(data["2"]) == {"dense", "a2sgd"}

    def test_cost_command(self, capsys, tmp_path):
        output = tmp_path / "cost.json"
        code = main(["cost", "--models", "lstm_ptb", "--algorithms", "dense", "a2sgd",
                     "--workers", "2", "8", "--output", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "Table 2" in out
        data = json.loads(output.read_text())
        assert "lstm_ptb" in data

    def test_compare_command(self, capsys):
        code = main(["compare", "--size", "20000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "a2sgd" in out and "dense" in out and "dgc" in out
