"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCLIParsing:
    def test_requires_a_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_run_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            main(["run", "--model", "alexnet"])

    def test_run_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            main(["run", "--algorithm", "zip"])


class TestCLICommands:
    def test_info_lists_models_and_compressors(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "lstm_ptb" in out
        assert "a2sgd" in out
        assert "66,034,000" in out

    def test_run_prints_convergence_and_writes_json(self, capsys, tmp_path):
        output = tmp_path / "result.json"
        code = main(["run", "--model", "fnn3", "--algorithm", "a2sgd", "--workers", "2",
                     "--epochs", "2", "--iterations", "4", "--output", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "bits/worker/iteration" in out
        assert output.exists()
        payload = json.loads(output.read_text())
        assert payload["wire_bits_per_iteration"] == 64.0

    def test_sweep_command(self, capsys, tmp_path):
        output = tmp_path / "sweep.json"
        code = main(["sweep", "--model", "fnn3", "--workers", "2", "--algorithms",
                     "dense", "a2sgd", "--epochs", "2", "--output", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 workers" in out
        data = json.loads(output.read_text())
        assert set(data["2"]) == {"dense", "a2sgd"}

    def test_cost_command(self, capsys, tmp_path):
        output = tmp_path / "cost.json"
        code = main(["cost", "--models", "lstm_ptb", "--algorithms", "dense", "a2sgd",
                     "--workers", "2", "8", "--output", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "Table 2" in out
        data = json.loads(output.read_text())
        assert "lstm_ptb" in data

    def test_compare_command(self, capsys):
        code = main(["compare", "--size", "20000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "a2sgd" in out and "dense" in out and "dgc" in out


class TestConfigDrivenCLI:
    def write_spec(self, tmp_path, **overrides):
        payload = {"model": "fnn3", "algorithm": "a2sgd", "world_size": 2, "epochs": 2,
                   "max_iterations_per_epoch": 4, "batch_size": 16, "seed": 0}
        payload.update(overrides)
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(payload))
        return path

    def test_run_from_config_matches_flag_run(self, capsys, tmp_path):
        path = self.write_spec(tmp_path)
        assert main(["run", "--config", str(path)]) == 0
        from_config = capsys.readouterr().out
        assert main(["run", "--model", "fnn3", "--algorithm", "a2sgd", "--workers", "2",
                     "--epochs", "2", "--iterations", "4", "--batch-size", "16",
                     "--seed", "0"]) == 0
        from_flags = capsys.readouterr().out
        # Seed-for-seed: the convergence table (losses and metric) must be
        # identical; only the wall-time part of the title may differ.
        assert from_config.splitlines()[1:] == from_flags.splitlines()[1:]

    def test_flags_override_config(self, capsys, tmp_path):
        path = self.write_spec(tmp_path, epochs=2)
        assert main(["run", "--config", str(path), "--epochs", "1"]) == 0
        out = capsys.readouterr().out
        # Only one epoch row: the explicit flag overrode the spec's epochs=2.
        data_rows = [line for line in out.splitlines()
                     if line and line.split("|")[0].strip().isdigit()]
        assert len(data_rows) == 1

    def test_run_preset_eval_every_and_no_fused_flags(self, capsys):
        code = main(["run", "--preset", "tiny", "--workers", "2", "--epochs", "2",
                     "--iterations", "2", "--eval-every", "2", "--no-fused"])
        assert code == 0
        out = capsys.readouterr().out
        assert "train loss" in out

    def test_run_rejects_invalid_config(self, capsys, tmp_path):
        path = self.write_spec(tmp_path, algorithm="zip")
        assert main(["run", "--config", str(path)]) == 1
        err = capsys.readouterr().err
        assert "unknown compressor 'zip'" in err

    def test_run_with_named_callback(self, capsys, tmp_path):
        path = self.write_spec(tmp_path, epochs=1, max_iterations_per_epoch=2)
        assert main(["run", "--config", str(path), "--callback", "progress"]) == 0

    def test_validate_ok(self, capsys, tmp_path):
        path = self.write_spec(tmp_path)
        assert main(["validate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "derived TrainerConfig" in out

    def test_validate_reports_problems_and_fails(self, capsys, tmp_path):
        path = self.write_spec(tmp_path, world_size=0, algorithm="zip")
        assert main(["validate", str(path)]) == 1
        err = capsys.readouterr().err
        assert "INVALID" in err
        assert "world_size" in err and "zip" in err

    def test_validate_missing_file(self, capsys, tmp_path):
        assert main(["validate", str(tmp_path / "nope.json")]) == 1
        assert "does not exist" in capsys.readouterr().err

    def test_validate_unknown_field_suggestion(self, capsys, tmp_path):
        path = tmp_path / "typo.json"
        path.write_text(json.dumps({"algorithmm": "a2sgd"}))
        assert main(["validate", str(path)]) == 1
        assert "did you mean 'algorithm'" in capsys.readouterr().err

    def test_info_lists_registries(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Datasets" in out
        assert "Trainer callbacks" in out
        assert "early_stopping" in out
