"""The federated client-population layer (PR: client sampling over slots).

Covers the tentpole end to end: cohort samplers (seeded, reproducible,
world-size independent), non-IID per-client partitioning, the hierarchical
two-level topology and its cohort-only wire pricing, fedavg's pinned
bit-identity with local_sgd under the full sampler, lazy slot binding for
N ≫ P populations, mid-round checkpoint resume with swapped-out per-client
state, and the spec/CLI validation messages.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.comm.topology import HierarchicalTopology, get_topology
from repro.core import DistributedTrainer, TrainerConfig, load_checkpoint, save_checkpoint
from repro.core.callbacks import Callback
from repro.core.flatten import flatten_parameters
from repro.core.spec import ExperimentSpec, SpecError
from repro.data.dataloader import shard_dataset
from repro.data.partition import partition_clients, partition_indices
from repro.data.registry import get_dataset
from repro.federated import CLIENT_SAMPLERS, ClientSpec
from repro.sync import SYNC_STRATEGIES, SyncSpec

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def make_trainer(callbacks=None, **overrides) -> DistributedTrainer:
    base = dict(model="fnn3", preset="tiny", algorithm="dense", world_size=4,
                epochs=2, seed=0, batch_size=8, num_train=192, num_test=48,
                max_iterations_per_epoch=6)
    base.update(overrides)
    return DistributedTrainer(TrainerConfig(**base), callbacks=callbacks)


def final_params(trainer: DistributedTrainer) -> np.ndarray:
    return np.stack([flatten_parameters(m) for m in trainer.replicas])


class StopAfterEpoch(Callback):
    """Interrupt training after ``epochs`` completed epochs (mid-run stop)."""

    def __init__(self, epochs: int):
        self.epochs = int(epochs)

    def on_epoch_end(self, state) -> None:
        if state.epoch + 1 >= self.epochs:
            state.stop_requested = True


class SaveAfterEpoch(Callback):
    """Write a checkpoint at the end of one specific epoch, mid-training
    (before train()'s final consolidation collapses the replicas)."""

    def __init__(self, path, epoch: int = 0):
        self.path = path
        self.epoch = int(epoch)

    def on_epoch_end(self, state) -> None:
        if state.epoch == self.epoch:
            save_checkpoint(state.trainer, self.path)


# --------------------------------------------------------------------- #
# cohort samplers
# --------------------------------------------------------------------- #
class TestClientSamplers:
    def test_registry_lists_both_families(self):
        assert "full" in CLIENT_SAMPLERS
        assert "uniform_without_replacement" in CLIENT_SAMPLERS
        assert CLIENT_SAMPLERS.canonical("uniform") == "uniform_without_replacement"
        assert CLIENT_SAMPLERS.canonical("all") == "full"

    def test_uniform_cohorts_are_seeded_and_reproducible(self):
        sampler = CLIENT_SAMPLERS.create("uniform")
        first = [sampler.sample(r, 32, 4, seed=7) for r in range(10)]
        again = [sampler.sample(r, 32, 4, seed=7) for r in range(10)]
        assert first == again
        assert [sampler.sample(r, 32, 4, seed=8) for r in range(10)] != first

    def test_cohorts_are_sorted_distinct_and_in_range(self):
        sampler = CLIENT_SAMPLERS.create("uniform")
        for round_index in range(20):
            cohort = sampler.sample(round_index, 16, 5, seed=3)
            assert cohort == tuple(sorted(set(cohort)))
            assert len(cohort) == 5
            assert all(0 <= c < 16 for c in cohort)

    @pytest.mark.parametrize("round_index", [0, 1, 3, 11])
    def test_cohort_sequence_is_world_size_independent(self, round_index):
        # The same (seed, round) draws nested cohorts for K = 2, 4, 8: the
        # cohort is a prefix of one permutation, so scaling the materialized
        # world up or down never reshuffles who participates when.
        sampler = CLIENT_SAMPLERS.create("uniform")
        cohorts = {k: set(sampler.sample(round_index, 32, k, seed=7))
                   for k in (2, 4, 8)}
        assert cohorts[2] <= cohorts[4] <= cohorts[8]

    def test_full_sampler_returns_everyone(self):
        sampler = CLIENT_SAMPLERS.create("full")
        assert sampler.sample(5, 6, 6, seed=0) == tuple(range(6))
        with pytest.raises(ValueError):
            sampler.sample(0, 6, 4, seed=0)


# --------------------------------------------------------------------- #
# non-IID per-client partitioning
# --------------------------------------------------------------------- #
class TestPartitioning:
    def _targets(self, n=500, classes=10, seed=0):
        return np.random.default_rng(seed).integers(0, classes, size=n)

    @pytest.mark.parametrize("policy,kwargs", [
        ("iid", {}),
        ("dirichlet", {"alpha": 0.3}),
        ("shards", {}),
    ])
    def test_partition_is_exact(self, policy, kwargs):
        targets = self._targets()
        shards = partition_indices(targets, 16, policy=policy, seed=5, **kwargs)
        assert len(shards) == 16
        assert all(len(s) >= 1 for s in shards)
        merged = np.concatenate(shards)
        assert len(merged) == len(targets)
        assert len(np.unique(merged)) == len(targets)      # disjoint + cover

    def test_dirichlet_is_deterministic_per_client_id(self):
        targets = self._targets()
        first = partition_indices(targets, 16, policy="dirichlet", seed=5, alpha=0.3)
        again = partition_indices(targets, 16, policy="dirichlet", seed=5, alpha=0.3)
        for a, b in zip(first, again):
            np.testing.assert_array_equal(a, b)
        other_seed = partition_indices(targets, 16, policy="dirichlet", seed=6,
                                       alpha=0.3)
        assert any(not np.array_equal(a, b) for a, b in zip(first, other_seed))

    def test_dirichlet_skews_labels(self):
        targets = self._targets(n=2000)
        shards = partition_indices(targets, 16, policy="dirichlet", seed=5,
                                   alpha=0.1)
        iid = partition_indices(targets, 16, policy="iid", seed=5)

        def mean_class_count(split):
            return float(np.mean([len(np.unique(targets[s])) for s in split]))

        # Severe alpha concentrates each client on far fewer classes.
        assert mean_class_count(shards) < mean_class_count(iid) - 1.0

    def test_iid_partition_matches_shard_dataset_at_equal_sizes(self):
        # The fedavg ≡ local_sgd bit-identity rests on this: with N == P the
        # iid partition serves exactly the trainer's default per-rank shards.
        train, _ = get_dataset("cifar10_tiny", seed=0, num_train=128,
                               num_test=32)
        clients = partition_clients(train, 4, policy="iid", seed=0)
        for rank in range(4):
            expected = shard_dataset(train, rank, 4, shuffle_seed=0)
            np.testing.assert_array_equal(clients[rank].inputs, expected.inputs)
            np.testing.assert_array_equal(clients[rank].targets, expected.targets)

    def test_unknown_policy_and_bad_alpha_are_rejected(self):
        targets = self._targets()
        with pytest.raises(ValueError, match="unknown data_skew"):
            partition_indices(targets, 4, policy="zipf")
        with pytest.raises(ValueError, match="alpha > 0"):
            partition_indices(targets, 4, policy="dirichlet", alpha=-1.0)


# --------------------------------------------------------------------- #
# hierarchical (two-level) topology
# --------------------------------------------------------------------- #
class TestHierarchicalTopology:
    def test_registered_with_aliases(self):
        assert isinstance(get_topology("hierarchical"), HierarchicalTopology)
        assert isinstance(get_topology("two_level"), HierarchicalTopology)

    def test_edge_groups_are_contiguous_and_cover(self):
        topology = HierarchicalTopology(num_edges=2)
        assert topology.edge_groups(8) == ((0, 1, 2, 3), (4, 5, 6, 7))
        assert topology.max_group_size(8) == 4
        three = HierarchicalTopology(num_edges=3).edge_groups(8)
        assert sum(len(g) for g in three) == 8
        assert all(len(g) >= 1 for g in three)

    def test_more_edges_than_ranks_clamps(self):
        topology = HierarchicalTopology(num_edges=8)
        groups = topology.edge_groups(3)
        assert len(groups) == 3
        assert all(len(g) == 1 for g in groups)

    def test_neighbors_stay_within_one_edge_group(self):
        topology = HierarchicalTopology(num_edges=2)
        assert topology.neighbors(1, 8) == (0, 2, 3)
        assert topology.neighbors(5, 8) == (4, 6, 7)
        assert topology.edge_of(5, 8) == 1

    def test_invalid_num_edges_rejected(self):
        with pytest.raises(ValueError):
            HierarchicalTopology(num_edges=0)


# --------------------------------------------------------------------- #
# fedavg: pinned bit-identity with local_sgd under the full sampler
# --------------------------------------------------------------------- #
class TestFedAvgEquivalence:
    @pytest.mark.parametrize("fused", [True, False], ids=["fused", "seed"])
    def test_full_sampler_equals_local_sgd_bit_for_bit(self, fused):
        local = make_trainer(fused_pipeline=fused,
                             sync={"strategy": "local_sgd", "period": 2})
        local_metrics = local.train()
        fedavg = make_trainer(fused_pipeline=fused,
                              sync={"strategy": "fedavg", "period": 2},
                              clients={"num_clients": 4, "sampler": "full"})
        fedavg_metrics = fedavg.train()
        np.testing.assert_array_equal(final_params(local), final_params(fedavg))
        assert local_metrics.train_loss == fedavg_metrics.train_loss
        assert local_metrics.metric == fedavg_metrics.metric

    def test_fedavg_is_registered(self):
        assert "fedavg" in SYNC_STRATEGIES
        assert SYNC_STRATEGIES.canonical("federated_averaging") == "fedavg"


# --------------------------------------------------------------------- #
# sampled cohorts: N ≫ P with lazy slot binding
# --------------------------------------------------------------------- #
class TestSampledCohorts:
    CLIENTS = {"num_clients": 16, "sampler": "uniform", "sampler_seed": 7,
               "data_skew": "dirichlet", "data_skew_kwargs": {"alpha": 0.3}}

    def test_run_materializes_only_cohort_slots(self):
        trainer = make_trainer(sync={"strategy": "fedavg", "period": 2},
                               clients=self.CLIENTS, num_train=512,
                               max_iterations_per_epoch=8)
        metrics = trainer.train()
        assert all(np.isfinite(metrics.train_loss))
        # Only (K, n) buffers exist, never (N, n).
        assert trainer.flat_world.param_matrix.shape[0] == 4
        assert trainer._velocity_matrix.shape[0] == 4
        summary = trainer.population.summary()
        assert summary["num_clients"] == 16
        assert summary["cohort_size"] == 4
        assert summary["unique_clients_seen"] > 4
        # The parking lot holds only clients that were actually swapped out.
        assert len(trainer.population.store) <= summary["unique_clients_seen"]

    def test_cohort_sequence_reruns_identically(self):
        runs = []
        for _ in range(2):
            trainer = make_trainer(sync={"strategy": "fedavg", "period": 2},
                                   clients=self.CLIENTS)
            trainer.train()
            runs.append(list(trainer.population.cohort_history))
        assert runs[0] == runs[1]

    def test_participation_metrics_recorded(self):
        trainer = make_trainer(sync={"strategy": "fedavg", "period": 2},
                               clients=self.CLIENTS)
        metrics = trainer.train()
        assert metrics.active_clients == [4, 4]
        assert metrics.cohort_fraction == [0.25, 0.25]
        # Cumulative distinct participants never decrease.
        assert metrics.unique_clients_seen[0] <= metrics.unique_clients_seen[1]
        assert metrics.unique_clients_seen[-1] > 4

    def test_csv_has_participation_columns(self, tmp_path):
        trainer = make_trainer(sync={"strategy": "fedavg", "period": 2},
                               clients=self.CLIENTS)
        trainer.train()
        path = trainer.metrics.to_csv(tmp_path / "metrics.csv")
        header = path.read_text().splitlines()[0].split(",")
        for column in ("active_clients", "cohort_fraction", "unique_clients_seen"):
            assert column in header

    def test_without_population_metrics_degenerate_to_world_size(self):
        trainer = make_trainer(epochs=1)
        metrics = trainer.train()
        assert metrics.active_clients == [4]
        assert metrics.cohort_fraction == [1.0]
        assert metrics.unique_clients_seen == [4]


# --------------------------------------------------------------------- #
# hierarchical fedavg: cohort-priced two-level aggregation
# --------------------------------------------------------------------- #
class TestHierarchicalFedAvg:
    SYNC = {"strategy": "fedavg", "period": 2, "topology": "hierarchical"}

    def test_wire_accounting_prices_the_active_cohort_tree(self):
        clients = {"num_clients": 64, "sampler": "uniform", "sampler_seed": 7}
        tree = make_trainer(world_size=8, sync=self.SYNC, clients=clients)
        flat = make_trainer(world_size=8, clients=clients,
                            sync={"strategy": "fedavg", "period": 2})
        n = tree.num_parameters
        # Busiest edge aggregator: its group's uplinks plus the server link,
        # amortized over the period — a function of K (the cohort), never N.
        expected = (4 + 1) * 32.0 * n / 2
        assert tree.wire_bits_per_iteration == pytest.approx(expected)
        assert flat.wire_bits_per_iteration == pytest.approx(32.0 * n / 2)

    def test_two_level_average_matches_flat_average(self):
        clients = {"num_clients": 64, "sampler": "uniform", "sampler_seed": 7}
        tree = make_trainer(world_size=8, sync=self.SYNC, clients=clients)
        flat = make_trainer(world_size=8, clients=clients,
                            sync={"strategy": "fedavg", "period": 2})
        tree_metrics = tree.train()
        flat_metrics = flat.train()
        assert all(np.isfinite(tree_metrics.train_loss))
        # Count-weighted per-edge partial sums reduce to the same cohort
        # mean (float64 partials, so only approximately in float32 terms).
        np.testing.assert_allclose(final_params(tree), final_params(flat),
                                   rtol=0, atol=1e-5)
        # The tree exchange costs simulated wire time.
        assert tree.world.simulated_comm_time > 0.0

    def test_only_hierarchical_topology_binds(self):
        with pytest.raises(SpecError, match="accepts the two-level "
                                            "'hierarchical' topology only"):
            ExperimentSpec(sync={"strategy": "fedavg", "period": 2,
                                 "topology": "star"}).validate()

    def test_robust_aggregators_require_flat_fedavg(self):
        with pytest.raises(SpecError, match="elementwise aggregators only"):
            ExperimentSpec(sync={"strategy": "fedavg", "period": 2,
                                 "topology": "hierarchical",
                                 "aggregator": "trimmed_mean"}).validate()


# --------------------------------------------------------------------- #
# mid-round checkpoint resume
# --------------------------------------------------------------------- #
class TestMidRoundCheckpointResume:
    # H=4 with 6 iterations/epoch: the epoch-0 checkpoint lands mid-round
    # (6 % 4 == 2), with per-client state parked in the store and live
    # codec references/residuals on the slots.
    KW = dict(algorithm="topk", compressor_kwargs={"ratio": 0.05},
              sync={"strategy": "fedavg", "period": 4,
                    "parameter_compression": "topk",
                    "parameter_compression_kwargs": {"ratio": 0.05}},
              clients={"num_clients": 12, "sampler": "uniform",
                       "sampler_seed": 3, "data_skew": "dirichlet",
                       "data_skew_kwargs": {"alpha": 0.5}})

    def test_resume_matches_uninterrupted_run(self, tmp_path):
        uninterrupted = make_trainer(**self.KW)
        uninterrupted.train()

        path = tmp_path / "ckpt.npz"
        first_half = make_trainer(
            callbacks=[SaveAfterEpoch(path, epoch=0), StopAfterEpoch(1)],
            **self.KW)
        first_half.train()

        resumed = make_trainer(**self.KW)
        load_checkpoint(resumed, path)
        assert resumed._global_iteration == 6
        # Mid-round state round-trips: the restored assignment and parked
        # per-client entries mirror the interrupted run's.
        mid = resumed.population
        assert mid.assignment is not None
        assert mid.rounds_completed == 2          # boundaries at 0 and 4
        resumed.train()

        np.testing.assert_array_equal(final_params(uninterrupted),
                                      final_params(resumed))
        assert resumed.metrics.train_loss == uninterrupted.metrics.train_loss
        assert resumed.metrics.metric == uninterrupted.metrics.metric
        # The sampler stream continued, not restarted: the post-resume
        # cohorts equal the uninterrupted run's later rounds.
        assert resumed.population.cohort_history == \
            uninterrupted.population.cohort_history[2:]
        assert resumed.population.summary()["unique_clients_seen"] == \
            uninterrupted.population.summary()["unique_clients_seen"]

    def test_swapped_out_state_round_trips_bitwise(self, tmp_path):
        trainer = make_trainer(
            callbacks=[SaveAfterEpoch(tmp_path / "ckpt.npz", epoch=0),
                       StopAfterEpoch(1)],
            **self.KW)
        trainer.train()
        resumed = make_trainer(**self.KW)
        load_checkpoint(resumed, tmp_path / "ckpt.npz")
        store, restored = trainer.population.store, resumed.population.store
        assert restored.clients()  # the mid-round store is non-trivial
        assert restored.clients() == store.clients()
        for client in store.clients():
            a, b = store.get(client), restored.get(client)
            np.testing.assert_array_equal(a["velocity"], b["velocity"])
            assert set(a["compressor"]) == set(b["compressor"])
            for kind in a["compressor"]:
                np.testing.assert_array_equal(a["compressor"][kind],
                                              b["compressor"][kind])
        assert resumed.population.assignment.clients == \
            trainer.population.assignment.clients


# --------------------------------------------------------------------- #
# validation: spec + trainer raise the same pinned messages
# --------------------------------------------------------------------- #
class TestClientValidation:
    def test_cohort_exceeding_population_is_pinned(self):
        message = ("clients: cohort_size 8 exceeds num_clients 4; the "
                   "sampled cohort cannot be larger than the client "
                   "population")
        spec = ExperimentSpec(world_size=8,
                              sync={"strategy": "fedavg", "period": 2},
                              clients={"num_clients": 4, "cohort_size": 8})
        with pytest.raises(SpecError) as excinfo:
            spec.validate()
        assert message in str(excinfo.value)
        with pytest.raises(ValueError, match="cannot be larger"):
            DistributedTrainer(spec.to_trainer_config())

    def test_clients_require_fedavg(self):
        with pytest.raises(SpecError, match="requires sync strategy 'fedavg'"):
            ExperimentSpec(clients={"num_clients": 8},
                           world_size=4).validate()

    def test_sampled_cohorts_require_fused_pipeline(self):
        with pytest.raises(SpecError, match="requires\\s+fused_pipeline=true"):
            ExperimentSpec(fused_pipeline=False, world_size=4,
                           sync={"strategy": "fedavg", "period": 2},
                           clients={"num_clients": 8}).validate()

    def test_sampled_cohorts_require_period_two(self):
        with pytest.raises(SpecError, match="sync period >= 2"):
            ExperimentSpec(world_size=4,
                           sync={"strategy": "fedavg", "period": 1},
                           clients={"num_clients": 8}).validate()

    def test_full_sampler_requires_everyone(self):
        with pytest.raises(SpecError, match="cohort_size == num_clients"):
            ExperimentSpec(world_size=4,
                           sync={"strategy": "fedavg", "period": 2},
                           clients={"num_clients": 8,
                                    "sampler": "full"}).validate()

    def test_faults_are_incompatible(self):
        with pytest.raises(SpecError, match="fault injection is not supported"):
            ExperimentSpec(world_size=4,
                           sync={"strategy": "fedavg", "period": 2},
                           faults="crash_stop",
                           clients={"num_clients": 8}).validate()

    def test_cohort_without_population_is_rejected(self):
        with pytest.raises(SpecError, match="num_clients\\s+is unset"):
            ExperimentSpec(clients={"cohort_size": 4}).validate()

    def test_unknown_clients_key_is_rejected(self):
        with pytest.raises(SpecError, match="unknown clients field"):
            ExperimentSpec(clients={"num_client": 8}).validate()

    def test_disabled_section_is_default_and_silent(self):
        spec = ExperimentSpec()
        assert spec.resolved_clients().enabled is False
        spec.validate()

    def test_merged_with_resets_kwargs_on_skew_switch(self):
        spec = ClientSpec(num_clients=8, data_skew="dirichlet",
                          data_skew_kwargs={"alpha": 0.3})
        merged = spec.merged_with({"data_skew": "shards"})
        assert merged["data_skew_kwargs"] == {}
        kept = spec.merged_with({"data_skew": "dirichlet"})
        assert kept["data_skew_kwargs"] == {"alpha": 0.3}


# --------------------------------------------------------------------- #
# acceptance: the shipped example spec end to end
# --------------------------------------------------------------------- #
class TestExampleSpec:
    def test_fedavg_noniid_example_runs(self):
        spec = ExperimentSpec.from_file(EXAMPLES / "spec_fedavg_noniid.json")
        spec.validate()
        payload = json.loads((EXAMPLES / "spec_fedavg_noniid.json").read_text())
        assert payload["clients"]["num_clients"] == 64
        assert payload["clients"]["cohort_size"] == 8

        trainer = DistributedTrainer(spec.to_trainer_config())
        metrics = trainer.train()
        assert all(np.isfinite(metrics.train_loss))
        # N=64 logical clients over exactly (8, n) materialized buffers.
        assert trainer.flat_world.param_matrix.shape[0] == 8
        assert trainer.population.summary()["unique_clients_seen"] > 8
