"""Tests for the Table-1 learning-rate policies."""

import pytest

from repro.optim import (
    CompositeLRPolicy,
    ConstantLR,
    GradualWarmup,
    LinearScaling,
    PolynomialDecay,
    build_lr_policy,
)
from repro.optim.lr_schedule import satisfies_assumption2


class TestIndividualSchedules:
    def test_constant(self):
        assert ConstantLR().lr_at(10.0, 0.1) == 0.1

    def test_linear_scaling_multiplies_by_world_size(self):
        schedule = LinearScaling(world_size=8, multiplier=1.0)
        assert schedule.lr_at(0, 0.1) == pytest.approx(0.8)

    def test_linear_scaling_multiplier(self):
        schedule = LinearScaling(world_size=4, multiplier=1.5)
        assert schedule.lr_at(0, 0.1) == pytest.approx(0.6)

    def test_warmup_starts_low_and_reaches_base(self):
        schedule = GradualWarmup(warmup_epochs=5, warmup_factor=0.1)
        assert schedule.lr_at(0.0, 1.0) == pytest.approx(0.1)
        assert schedule.lr_at(2.5, 1.0) == pytest.approx(0.55)
        assert schedule.lr_at(5.0, 1.0) == pytest.approx(1.0)
        assert schedule.lr_at(20.0, 1.0) == pytest.approx(1.0)

    def test_warmup_zero_epochs_is_identity(self):
        assert GradualWarmup(warmup_epochs=0).lr_at(0.0, 0.3) == 0.3

    def test_polynomial_decay_monotone_to_end_lr(self):
        schedule = PolynomialDecay(total_epochs=100, power=2.0, end_lr=0.0)
        values = [schedule.lr_at(e, 1.0) for e in (0, 25, 50, 100, 150)]
        assert values[0] == pytest.approx(1.0)
        assert all(a >= b for a, b in zip(values, values[1:]))
        assert values[3] == pytest.approx(0.0)
        assert values[4] == pytest.approx(0.0)

    def test_polynomial_decay_respects_end_lr(self):
        schedule = PolynomialDecay(total_epochs=10, power=1.0, end_lr=0.01)
        assert schedule.lr_at(10, 1.0) == pytest.approx(0.01)


class TestCompositePolicy:
    def test_composition_order(self):
        policy = CompositeLRPolicy([LinearScaling(world_size=2), GradualWarmup(warmup_epochs=2),
                                    PolynomialDecay(total_epochs=10)])
        lr0 = policy.lr_at(0.0, 0.1)
        lr_mid = policy.lr_at(5.0, 0.1)
        # At epoch 0: scaled 0.2, warmup factor 0.1 -> 0.02, decay factor 1.
        assert lr0 == pytest.approx(0.02)
        assert 0 < lr_mid < 0.2

    def test_callable_shortcut(self):
        policy = CompositeLRPolicy([ConstantLR()])
        assert policy(3.0, 0.7) == 0.7


class TestPolicyParser:
    def test_parse_full_vgg_policy(self):
        policy, use_lars = build_lr_policy("LS(1.5 x) + GW + PD + LARS", world_size=8,
                                           total_epochs=150)
        assert use_lars
        kinds = [type(s).__name__ for s in policy.schedules]
        assert kinds == ["LinearScaling", "GradualWarmup", "PolynomialDecay"]
        assert policy.schedules[0].multiplier == pytest.approx(1.5)

    def test_parse_pd_only(self):
        policy, use_lars = build_lr_policy("PD", world_size=4, total_epochs=100)
        assert not use_lars
        assert len(policy.schedules) == 1

    def test_parse_empty_spec_gives_constant(self):
        policy, use_lars = build_lr_policy("", world_size=4)
        assert not use_lars
        assert policy.lr_at(5, 0.3) == 0.3

    def test_parse_unknown_token_raises(self):
        with pytest.raises(ValueError):
            build_lr_policy("LS(1 x) + WAT")

    def test_lars_only_spec(self):
        policy, use_lars = build_lr_policy("LARS")
        assert use_lars
        assert policy.lr_at(0, 0.2) == 0.2

    def test_table1_policies_all_parse(self):
        from repro.models.registry import PAPER_HYPERPARAMETERS
        for name, hp in PAPER_HYPERPARAMETERS.items():
            policy, _ = build_lr_policy(str(hp["lr_policy"]), world_size=8,
                                        total_epochs=float(hp["epochs"]))
            assert policy.lr_at(1.0, float(hp["base_lr"])) > 0


class TestAssumption2:
    def test_decaying_policy_satisfies_proxy(self):
        policy, _ = build_lr_policy("GW + PD", world_size=4, total_epochs=20)
        assert satisfies_assumption2(policy, base_lr=0.1, total_epochs=20)

    def test_constant_policy_also_passes_finite_horizon_proxy(self):
        # On a finite horizon the proxy only checks positivity/finiteness.
        assert satisfies_assumption2(ConstantLR(), base_lr=0.1, total_epochs=5)
