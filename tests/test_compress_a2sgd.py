"""Tests for the A2SGD compressor — the paper's core contribution (Algorithm 1)."""

import numpy as np
import pytest

from repro.compress import A2SGDCompressor, ExchangeKind


class TestTwoLevelMeans:
    def test_means_match_definition(self):
        g = np.array([1.0, -2.0, 3.0, -4.0, 0.0], dtype=np.float32)
        mu_plus, mu_minus = A2SGDCompressor.two_level_means(g)
        # Positive entries (>= 0): 1, 3, 0 -> mean 4/3; negatives: |-2|,|-4| -> 3.
        assert mu_plus == pytest.approx(4.0 / 3.0)
        assert mu_minus == pytest.approx(3.0)

    def test_all_positive_gradient(self):
        g = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        mu_plus, mu_minus = A2SGDCompressor.two_level_means(g)
        assert mu_plus == pytest.approx(2.0)
        assert mu_minus == 0.0

    def test_all_negative_gradient(self):
        g = np.array([-1.0, -3.0], dtype=np.float32)
        mu_plus, mu_minus = A2SGDCompressor.two_level_means(g)
        assert mu_plus == 0.0
        assert mu_minus == pytest.approx(2.0)

    def test_zero_vector(self):
        mu_plus, mu_minus = A2SGDCompressor.two_level_means(np.zeros(4, dtype=np.float32))
        assert mu_plus == 0.0 and mu_minus == 0.0

    def test_means_are_nonnegative(self, gradient_vector):
        mu_plus, mu_minus = A2SGDCompressor.two_level_means(gradient_vector)
        assert mu_plus >= 0.0 and mu_minus >= 0.0

    def test_enc_operator(self):
        g = np.array([0.5, -0.25, 2.0], dtype=np.float32)
        mu_plus, mu_minus = A2SGDCompressor.two_level_means(g)
        encoded = A2SGDCompressor.encode(g, mu_plus, mu_minus)
        np.testing.assert_allclose(encoded, [mu_plus, -mu_minus, mu_plus], rtol=1e-6)


class TestCompressDecompress:
    def test_payload_is_exactly_two_values(self, gradient_vector):
        payload, _ = A2SGDCompressor().compress(gradient_vector)
        assert payload.shape == (2,)

    def test_payload_contains_the_two_means(self, gradient_vector):
        payload, _ = A2SGDCompressor().compress(gradient_vector)
        mu_plus, mu_minus = A2SGDCompressor.two_level_means(gradient_vector)
        assert payload[0] == pytest.approx(mu_plus, rel=1e-6)
        assert payload[1] == pytest.approx(mu_minus, rel=1e-6)

    def test_context_holds_mask_and_error(self, gradient_vector):
        _, ctx = A2SGDCompressor().compress(gradient_vector)
        assert ctx["positive_mask"].shape == gradient_vector.shape
        assert ctx["error"].shape == gradient_vector.shape

    def test_error_vector_is_gradient_minus_encoding(self, gradient_vector):
        compressor = A2SGDCompressor()
        payload, ctx = compressor.compress(gradient_vector)
        encoded = A2SGDCompressor.encode(gradient_vector, payload[0], payload[1])
        np.testing.assert_allclose(ctx["error"], gradient_vector - encoded, atol=1e-6)

    def test_single_worker_roundtrip_is_lossless(self, gradient_vector):
        # With one worker the global means equal the local means, so error
        # feedback restores the original gradient exactly (up to float32).
        compressor = A2SGDCompressor()
        payload, ctx = compressor.compress(gradient_vector)
        reconstructed = compressor.decompress(payload, ctx)
        np.testing.assert_allclose(reconstructed, gradient_vector, atol=1e-6)

    def test_reconstruction_with_global_means(self, rng):
        # Simulate two workers: reconstruction must use the global means but
        # keep each worker's own error vector.
        g0 = rng.standard_normal(1000).astype(np.float32)
        g1 = rng.standard_normal(1000).astype(np.float32) * 2.0
        c0, c1 = A2SGDCompressor(), A2SGDCompressor()
        p0, ctx0 = c0.compress(g0)
        p1, ctx1 = c1.compress(g1)
        global_means = (p0 + p1) / 2.0
        r0 = c0.decompress(global_means, ctx0)
        expected = ctx0["error"] + np.where(ctx0["positive_mask"], global_means[0],
                                            -global_means[1])
        np.testing.assert_allclose(r0, expected, atol=1e-6)

    def test_decompress_requires_two_means(self, gradient_vector):
        compressor = A2SGDCompressor()
        _, ctx = compressor.compress(gradient_vector)
        with pytest.raises(ValueError):
            compressor.decompress(np.zeros(3), ctx)

    def test_rejects_non_flat_gradient(self, rng):
        with pytest.raises(ValueError):
            A2SGDCompressor().compress(rng.standard_normal((4, 4)))

    def test_no_error_feedback_drops_error(self, gradient_vector):
        compressor = A2SGDCompressor(error_feedback=False)
        payload, ctx = compressor.compress(gradient_vector)
        np.testing.assert_array_equal(ctx["error"], np.zeros_like(gradient_vector))
        reconstructed = compressor.decompress(payload, ctx)
        # Without the error term the reconstruction is exactly the encoding.
        expected = A2SGDCompressor.encode(gradient_vector, payload[0], payload[1])
        np.testing.assert_allclose(reconstructed, expected, atol=1e-6)

    def test_single_mean_ablation(self, gradient_vector):
        compressor = A2SGDCompressor(two_means=False)
        payload, ctx = compressor.compress(gradient_vector)
        assert payload[1] == 0.0
        reconstructed = compressor.decompress(payload, ctx)
        np.testing.assert_allclose(reconstructed, gradient_vector, atol=1e-6)


class TestStatisticalProperties:
    def test_variance_preserved_with_error_feedback(self, rng):
        # §3: retaining local errors keeps the variance close to dense SGD.
        g = (rng.standard_normal(10_000) * 0.05).astype(np.float32)
        compressor = A2SGDCompressor()
        payload, ctx = compressor.compress(g)
        reconstructed = compressor.decompress(payload, ctx)
        assert reconstructed.var() == pytest.approx(g.var(), rel=1e-4)

    def test_variance_collapses_without_error_feedback(self, rng):
        g = (rng.standard_normal(10_000) * 0.05).astype(np.float32)
        compressor = A2SGDCompressor(error_feedback=False)
        payload, ctx = compressor.compress(g)
        reconstructed = compressor.decompress(payload, ctx)
        # The encoding of a zero-mean Gaussian has variance 2/π of the
        # original (a ±half-normal-mean coin flip), i.e. a ~36% variance drop.
        ratio = reconstructed.var() / g.var()
        assert ratio == pytest.approx(2.0 / np.pi, rel=0.05)
        assert ratio < 0.75

    def test_encoding_preserves_sign_pattern(self, gradient_vector):
        compressor = A2SGDCompressor()
        payload, ctx = compressor.compress(gradient_vector)
        encoded = A2SGDCompressor.encode(gradient_vector, payload[0], payload[1])
        assert np.all((encoded >= 0) == (gradient_vector >= 0))

    def test_mean_of_reconstruction_across_workers_close_to_dense(self, rng):
        # The across-worker average of reconstructions should be close to the
        # dense average (the ∇µ term is the only difference).
        gradients = [(rng.standard_normal(5000) * 0.01).astype(np.float32) for _ in range(4)]
        compressors = [A2SGDCompressor() for _ in range(4)]
        payloads, contexts = zip(*(c.compress(g) for c, g in zip(compressors, gradients)))
        global_means = np.mean(np.stack(payloads), axis=0)
        recons = [c.decompress(global_means, ctx) for c, ctx in zip(compressors, contexts)]
        dense_avg = np.mean(np.stack(gradients), axis=0)
        a2sgd_avg = np.mean(np.stack(recons), axis=0)
        gap = np.linalg.norm(a2sgd_avg - dense_avg) / np.linalg.norm(dense_avg)
        assert gap < 0.35

    def test_stats_recorded(self, gradient_vector):
        compressor = A2SGDCompressor()
        compressor.compress(gradient_vector)
        compressor.compress(gradient_vector)
        assert compressor.stats.iterations == 2
        assert compressor.stats.last_wire_bits == 64.0
        assert compressor.stats.total_wire_bits == 128.0


class TestAnalytics:
    def test_wire_bits_is_constant_in_n(self):
        compressor = A2SGDCompressor()
        assert compressor.wire_bits(1_000) == 64.0
        assert compressor.wire_bits(66_034_000) == 64.0
        assert compressor.wire_bits(10**9, world_size=16) == 64.0

    def test_computation_complexity(self):
        assert A2SGDCompressor().computation_complexity(100) == "O(n)"

    def test_exchange_is_allreduce(self):
        assert A2SGDCompressor.exchange is ExchangeKind.ALLREDUCE

    def test_registry_name(self):
        assert A2SGDCompressor.name == "a2sgd"
        assert A2SGDCompressor.uses_error_feedback
