"""Mid-run checkpoint save/restore of the virtual clock and async strategy
state: a resumed run must continue the simulated timeline and the parameter
trajectory bit for bit (satellite: sim/async checkpointing)."""

import numpy as np
import pytest

from repro.core import DistributedTrainer, TrainerConfig, load_checkpoint, save_checkpoint
from repro.core.callbacks import Callback
from repro.core.flatten import flatten_parameters


class StopAfterEpoch(Callback):
    """Interrupt training after ``epochs`` completed epochs (mid-run stop)."""

    def __init__(self, epochs: int):
        self.epochs = int(epochs)

    def on_epoch_end(self, state) -> None:
        if state.epoch + 1 >= self.epochs:
            state.stop_requested = True


def make_config(epochs: int = 2, **overrides) -> TrainerConfig:
    # epochs stays fixed across the interrupted and straight runs so both
    # build the identical LR schedule (total_epochs feeds the policy).
    base = dict(model="fnn3", preset="tiny", algorithm="dense", world_size=2,
                epochs=epochs, batch_size=8, max_iterations_per_epoch=4,
                num_train=128, num_test=32, seed=0,
                compute_model={"name": "lognormal", "sigma": 0.4}, clock_seed=7)
    base.update(overrides)
    return TrainerConfig(**base)


def make_trainer(stop_after: int = 0, **overrides) -> DistributedTrainer:
    callbacks = [StopAfterEpoch(stop_after)] if stop_after else None
    return DistributedTrainer(make_config(**overrides), callbacks=callbacks)


def final_params(trainer: DistributedTrainer) -> np.ndarray:
    return np.stack([flatten_parameters(m) for m in trainer.replicas])


SETUPS = {
    "async_ps": {"sync": {"strategy": "async_ps",
                          "strategy_kwargs": {"staleness_penalty": 0.9}}},
    "easgd": {"sync": {"strategy": "easgd", "period": 2}},
}


class TestResumedTrajectoriesAreBitIdentical:
    @pytest.mark.parametrize("label", sorted(SETUPS))
    def test_resume_matches_uninterrupted_run(self, label, tmp_path):
        overrides = SETUPS[label]

        uninterrupted = make_trainer(**overrides)
        uninterrupted.train()

        # Interrupt after epoch 1 of the same 2-epoch trajectory, save, and
        # resume in a fresh trainer configured for the full run.
        first_half = make_trainer(stop_after=1, **overrides)
        first_half.train()
        path = save_checkpoint(first_half, tmp_path / "ckpt.npz")
        resumed = make_trainer(**overrides)
        load_checkpoint(resumed, path)
        mid_time = resumed.simulated_time_s
        resumed.train()

        assert np.array_equal(final_params(uninterrupted), final_params(resumed))
        # The clock resumed from the checkpointed instant (not zero) and the
        # restored RNG stream positions reproduce the exact same timeline.
        assert mid_time > 0.0
        assert resumed.simulated_time_s == uninterrupted.simulated_time_s
        assert resumed.sim_report.steps_per_rank == \
            uninterrupted.sim_report.steps_per_rank
        assert resumed.sim_report.busy_s_per_rank == \
            uninterrupted.sim_report.busy_s_per_rank
        assert resumed.sim_report.comm_s_per_rank == \
            uninterrupted.sim_report.comm_s_per_rank
        assert resumed.sim_report.epoch_time_s == \
            uninterrupted.sim_report.epoch_time_s
        # Metrics history carries over: epoch-0 rows from the checkpoint,
        # epoch-1 rows recorded after the resume, matching the straight run.
        assert resumed.metrics.epochs == uninterrupted.metrics.epochs
        assert resumed.metrics.train_loss == uninterrupted.metrics.train_loss
        assert resumed.metrics.simulated_time_s == \
            uninterrupted.metrics.simulated_time_s

    def test_async_ps_server_state_round_trips(self, tmp_path):
        trainer = make_trainer(stop_after=1, **SETUPS["async_ps"])
        trainer.train()
        path = save_checkpoint(trainer, tmp_path / "ckpt.npz")

        fresh = make_trainer(**SETUPS["async_ps"])
        load_checkpoint(fresh, path)
        original, restored = trainer.sync_strategy, fresh.sync_strategy
        np.testing.assert_array_equal(restored.server_params,
                                      original.server_params)
        np.testing.assert_array_equal(restored.server_velocity,
                                      original.server_velocity)
        np.testing.assert_array_equal(restored.pull_versions,
                                      original.pull_versions)
        assert restored.version == original.version
        assert restored.staleness_histogram == original.staleness_histogram
        assert restored.rejected_pushes == original.rejected_pushes

    def test_engine_clock_and_pending_events_round_trip(self, tmp_path):
        trainer = make_trainer(stop_after=1, **SETUPS["easgd"])
        trainer.train()
        path = save_checkpoint(trainer, tmp_path / "ckpt.npz")

        fresh = make_trainer(**SETUPS["easgd"])
        load_checkpoint(fresh, path)
        engine, restored = trainer.sim_engine, fresh.sim_engine
        assert restored.clock.now == engine.clock.now
        assert restored.clock.pending() == engine.clock.pending()
        assert restored.total_steps == engine.total_steps
        assert restored.batches_consumed == engine.batches_consumed
        assert restored.compute_model.step_counts == \
            engine.compute_model.step_counts
        np.testing.assert_array_equal(fresh.sync_strategy.center,
                                      trainer.sync_strategy.center)
        np.testing.assert_array_equal(fresh.sync_strategy.local_steps,
                                      trainer.sync_strategy.local_steps)

    def test_lockstep_priced_continuation_is_bit_identical(self, tmp_path):
        """The lockstep path resumes by calling train() again on restored
        state (the repo's established semantics); the simulated clock and
        the compute-model RNG stream must continue from the checkpointed
        instant, keeping both trajectory and pricing identical.  The LM data
        stream is deterministic per pass, so the continuation is exact."""
        lm = dict(model="lstm_ptb", algorithm="a2sgd", epochs=1,
                  num_train=800, num_test=160, seq_len=8, batch_size=None)
        original = make_trainer(**lm)
        original.train()
        path = save_checkpoint(original, tmp_path / "ckpt.npz")
        resumed = make_trainer(**lm)
        load_checkpoint(resumed, path)
        assert resumed.lockstep_sim.now == original.lockstep_sim.now > 0.0

        original.train()
        resumed.train()
        assert np.array_equal(final_params(original), final_params(resumed))
        # The modeled quantities continue exactly; the clock itself also
        # folds in *measured* compression-kernel seconds, so it is only
        # approximately reproducible across runs.
        assert resumed.lockstep_sim.iterations == original.lockstep_sim.iterations
        assert resumed.lockstep_sim.compute_model.step_counts == \
            original.lockstep_sim.compute_model.step_counts
        assert resumed.lockstep_sim.now == pytest.approx(
            original.lockstep_sim.now, rel=0.05)

    def test_lockstep_simulator_round_trips(self, tmp_path):
        trainer = make_trainer(stop_after=1)
        trainer.train()
        path = save_checkpoint(trainer, tmp_path / "ckpt.npz")

        fresh = make_trainer()
        load_checkpoint(fresh, path)
        assert fresh.lockstep_sim.now == trainer.lockstep_sim.now
        assert fresh.lockstep_sim.iterations == trainer.lockstep_sim.iterations
        assert fresh.lockstep_sim.compute_model.step_counts == \
            trainer.lockstep_sim.compute_model.step_counts

    def test_plain_checkpoints_still_load_into_simulated_trainers(self, tmp_path):
        """A checkpoint written without any sim state (older run / no compute
        model) must load cleanly when the target trainer has no sim either."""
        plain = make_trainer(epochs=1, compute_model=None)
        plain.train()
        path = save_checkpoint(plain, tmp_path / "ckpt.npz")
        fresh = make_trainer(epochs=1, compute_model=None)
        load_checkpoint(fresh, path)
        assert fresh.sim_report is None
