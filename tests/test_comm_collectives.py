"""Tests for the collective algorithms and their traffic traces."""

import numpy as np
import pytest

from repro.comm import (
    CollectiveOp,
    CollectiveTrace,
    allgather,
    allreduce_naive,
    allreduce_ring,
    broadcast,
    reduce_scatter,
)


def make_buffers(rng, world_size=4, n=101):
    return [rng.standard_normal(n).astype(np.float32) for _ in range(world_size)]


class TestAllreduceRing:
    @pytest.mark.parametrize("world_size", [1, 2, 3, 4, 7, 8])
    def test_mean_matches_numpy(self, rng, world_size):
        buffers = make_buffers(rng, world_size)
        results, _ = allreduce_ring(buffers, CollectiveOp.MEAN)
        expected = np.mean(np.stack(buffers), axis=0)
        for result in results:
            np.testing.assert_allclose(result, expected, rtol=1e-5, atol=1e-6)

    def test_sum_matches_numpy(self, rng):
        buffers = make_buffers(rng, 5)
        results, _ = allreduce_ring(buffers, CollectiveOp.SUM)
        np.testing.assert_allclose(results[0], np.sum(np.stack(buffers), axis=0),
                                   rtol=1e-5, atol=1e-5)

    def test_max_matches_numpy(self, rng):
        buffers = make_buffers(rng, 3)
        results, _ = allreduce_ring(buffers, CollectiveOp.MAX)
        np.testing.assert_allclose(results[0], np.max(np.stack(buffers), axis=0), rtol=1e-6)

    def test_all_ranks_receive_identical_results(self, rng):
        results, _ = allreduce_ring(make_buffers(rng, 6), CollectiveOp.MEAN)
        for r in results[1:]:
            np.testing.assert_array_equal(r, results[0])

    def test_matches_naive_reference(self, rng):
        buffers = make_buffers(rng, 4, n=257)
        ring, _ = allreduce_ring(buffers, CollectiveOp.MEAN)
        naive, _ = allreduce_naive(buffers, CollectiveOp.MEAN)
        np.testing.assert_allclose(ring[0], naive[0], rtol=1e-5, atol=1e-6)

    def test_preserves_shape_and_dtype(self, rng):
        buffers = [rng.standard_normal((3, 5)).astype(np.float32) for _ in range(3)]
        results, _ = allreduce_ring(buffers, CollectiveOp.MEAN)
        assert results[0].shape == (3, 5)
        assert results[0].dtype == np.float32

    def test_payload_smaller_than_world_size(self, rng):
        # Two scalars reduced across 4 ranks — A2SGD's exact situation.
        buffers = [np.array([float(i), float(-i)]) for i in range(4)]
        results, _ = allreduce_ring(buffers, CollectiveOp.MEAN)
        np.testing.assert_allclose(results[0], [1.5, -1.5])

    def test_trace_structure(self, rng):
        buffers = make_buffers(rng, 4, n=100)
        _, trace = allreduce_ring(buffers, CollectiveOp.MEAN)
        assert trace.kind == "allreduce_ring"
        assert trace.world_size == 4
        assert trace.rounds == 2 * 3
        assert trace.message_bytes == pytest.approx(400.0)
        assert trace.bytes_sent_per_rank == pytest.approx(2 * 3 / 4 * 400.0)

    def test_single_rank_trace_is_free(self, rng):
        _, trace = allreduce_ring(make_buffers(rng, 1), CollectiveOp.MEAN)
        assert trace.rounds == 0
        assert trace.bytes_sent_per_rank == 0.0

    def test_mismatched_shapes_rejected(self, rng):
        with pytest.raises(ValueError):
            allreduce_ring([np.zeros(3), np.zeros(4)])

    def test_empty_participant_list_rejected(self):
        with pytest.raises(ValueError):
            allreduce_ring([])


class TestAllgather:
    def test_every_rank_gets_all_contributions(self, rng):
        buffers = make_buffers(rng, 3, n=11)
        gathered, _ = allgather(buffers)
        assert len(gathered) == 3
        for per_rank in gathered:
            assert len(per_rank) == 3
            for original, received in zip(buffers, per_rank):
                np.testing.assert_array_equal(original, received)

    def test_results_cannot_corrupt_contributions(self, rng):
        """Gathered payloads are staged read-only: a rank can neither mutate
        another rank's view nor the original contribution through them."""
        buffers = make_buffers(rng, 2, n=5)
        gathered, _ = allgather(buffers)
        with pytest.raises(ValueError):
            gathered[0][0][...] = 99.0
        assert not np.allclose(buffers[0], 99.0)

    def test_shared_staging_buffer_one_copy_per_contributor(self, rng):
        """The seed gave each rank private copies (O(P²·n) memcopy); now every
        rank holds views of the same staged array — one copy per contributor,
        detached from the contributor's own buffer."""
        buffers = make_buffers(rng, 4, n=16)
        gathered, _ = allgather(buffers)
        for contributor in range(4):
            staged = gathered[0][contributor]
            assert all(gathered[rank][contributor] is staged for rank in range(4))
            assert not staged.flags.writeable
            assert staged.base is None and staged is not buffers[contributor]
        # Each rank's list is still private: reordering one must not leak.
        gathered[0][0], gathered[0][1] = gathered[0][1], gathered[0][0]
        assert gathered[1][0] is gathered[0][1]

    def test_shared_staging_trace_matches_copy_semantics(self, rng):
        """Byte accounting is a property of the modelled ring, not of how the
        simulation moves memory — the trace must be unchanged by staging."""
        buffers = make_buffers(rng, 4, n=10)
        _, trace = allgather(buffers)
        assert trace.kind == "allgather"
        assert trace.world_size == 4
        assert trace.rounds == 3
        assert trace.message_bytes == pytest.approx(40.0)
        assert trace.bytes_sent_per_rank == pytest.approx(3 * 40.0)

    def test_mixed_dtypes_rejected_up_front(self, rng):
        buffers = [rng.standard_normal(5).astype(np.float32),
                   rng.standard_normal(5).astype(np.float64)]
        with pytest.raises(ValueError, match="rank 1: float64"):
            allgather(buffers)

    def test_equal_dtypes_accepted(self, rng):
        buffers = [rng.standard_normal(5).astype(np.float32) for _ in range(3)]
        gathered, _ = allgather(buffers)
        assert all(a.dtype == np.float32 for a in gathered[0])

    def test_variable_length_contributions(self, rng):
        buffers = [rng.standard_normal(5), rng.standard_normal(9)]
        gathered, trace = allgather(buffers)
        assert gathered[0][1].shape == (9,)
        assert trace.message_bytes == pytest.approx(np.mean([b.nbytes for b in buffers]))

    def test_trace_bytes(self, rng):
        buffers = make_buffers(rng, 4, n=10)
        _, trace = allgather(buffers)
        assert trace.rounds == 3
        assert trace.bytes_sent_per_rank == pytest.approx(3 * 40.0)


class TestBroadcastReduceScatter:
    def test_broadcast_distributes_root(self, rng):
        buffers = make_buffers(rng, 4, n=8)
        results, trace = broadcast(buffers, root=2)
        for r in results:
            np.testing.assert_array_equal(r, buffers[2])
        assert trace.rounds == 2  # ceil(log2(4))

    def test_broadcast_shares_one_read_only_staging_copy(self, rng):
        buffers = make_buffers(rng, 4, n=8)
        results, _ = broadcast(buffers, root=1)
        assert all(r is results[0] for r in results)
        assert not results[0].flags.writeable
        assert results[0] is not buffers[1]
        with pytest.raises(ValueError):
            results[0][...] = 0.0

    def test_broadcast_bad_root(self, rng):
        with pytest.raises(ValueError):
            broadcast(make_buffers(rng, 2), root=5)

    def test_reduce_scatter_chunks_cover_reduction(self, rng):
        buffers = make_buffers(rng, 4, n=100)
        chunks, trace = reduce_scatter(buffers, CollectiveOp.SUM)
        reconstructed = np.concatenate(chunks)
        np.testing.assert_allclose(reconstructed, np.sum(np.stack(buffers), axis=0),
                                   rtol=1e-5, atol=1e-5)
        assert trace.kind == "reduce_scatter"

    def test_reduce_scatter_chunk_sizes_balanced(self, rng):
        buffers = make_buffers(rng, 3, n=10)
        chunks, _ = reduce_scatter(buffers)
        sizes = [c.size for c in chunks]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1


class TestCollectiveOp:
    def test_combine_operations(self):
        arrays = [np.array([1.0, 2.0]), np.array([3.0, 4.0])]
        np.testing.assert_allclose(CollectiveOp.SUM.combine(arrays), [4.0, 6.0])
        np.testing.assert_allclose(CollectiveOp.MEAN.combine(arrays), [2.0, 3.0])
        np.testing.assert_allclose(CollectiveOp.MAX.combine(arrays), [3.0, 4.0])

    def test_combine_empty_raises(self):
        with pytest.raises(ValueError):
            CollectiveOp.SUM.combine([])
