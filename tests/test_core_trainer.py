"""Integration tests for the distributed trainer (Algorithm 1 end to end)."""

import numpy as np
import pytest

from repro.core import DistributedTrainer, TrainerConfig
from repro.core.flatten import flatten_parameters


def tiny_config(**overrides) -> TrainerConfig:
    base = dict(model="fnn3", preset="tiny", algorithm="a2sgd", world_size=2, epochs=2,
                seed=0, max_iterations_per_epoch=6, batch_size=16, num_train=256, num_test=64)
    base.update(overrides)
    return TrainerConfig(**base)


class TestConstruction:
    def test_invalid_world_size(self):
        with pytest.raises(ValueError):
            DistributedTrainer(tiny_config(world_size=0))

    def test_invalid_epochs(self):
        with pytest.raises(ValueError):
            DistributedTrainer(tiny_config(epochs=0))

    def test_replicas_start_identical(self):
        trainer = DistributedTrainer(tiny_config(world_size=3))
        flats = [flatten_parameters(m) for m in trainer.replicas]
        for other in flats[1:]:
            np.testing.assert_array_equal(flats[0], other)

    def test_one_compressor_per_worker(self):
        trainer = DistributedTrainer(tiny_config(world_size=3))
        assert len(trainer.compressors) == 3
        assert len({id(c) for c in trainer.compressors}) == 3

    def test_lars_selected_for_vgg_policy(self):
        trainer = DistributedTrainer(tiny_config(model="vgg16", world_size=2,
                                                 max_iterations_per_epoch=1,
                                                 num_train=64, num_test=16))
        from repro.optim import LARS
        assert isinstance(trainer.optimizers[0], LARS)

    def test_sgd_selected_for_fnn_policy(self):
        trainer = DistributedTrainer(tiny_config())
        from repro.optim import SGD
        assert isinstance(trainer.optimizers[0], SGD)

    def test_wire_bits_property(self):
        trainer = DistributedTrainer(tiny_config(algorithm="a2sgd"))
        assert trainer.wire_bits_per_iteration == 64.0
        dense = DistributedTrainer(tiny_config(algorithm="dense"))
        assert dense.wire_bits_per_iteration == 32.0 * dense.num_parameters


class TestClassificationTraining:
    @pytest.mark.parametrize("algorithm", ["dense", "a2sgd", "topk", "gaussiank", "qsgd"])
    def test_all_algorithms_improve_over_random_guessing(self, algorithm):
        # The sparsifiers use a denser ratio than the paper's 0.001 here
        # because the CI run only performs ~36 iterations; with 0.001 almost
        # nothing would have been transmitted yet.
        kwargs = {"ratio": 0.05} if algorithm in ("topk", "gaussiank") else {}
        config = tiny_config(algorithm=algorithm, epochs=3, max_iterations_per_epoch=12,
                             num_train=384, num_test=96, compressor_kwargs=kwargs)
        metrics = DistributedTrainer(config).train()
        # Ten balanced classes: random guessing is ~10 %.  QSGD is the
        # noisiest of the five (level-4 stochastic quantization), so the bar
        # is set where every algorithm clearly learns without being flaky.
        assert metrics.final_metric > 20.0
        assert len(metrics.epochs) == 3

    def test_loss_decreases(self):
        metrics = DistributedTrainer(tiny_config(epochs=3, max_iterations_per_epoch=12)).train()
        assert metrics.train_loss[-1] < metrics.train_loss[0]

    def test_a2sgd_close_to_dense_accuracy(self):
        """Figure 3's qualitative claim on the tiny substitute task."""
        dense = DistributedTrainer(tiny_config(algorithm="dense", epochs=3,
                                               max_iterations_per_epoch=12)).train()
        a2sgd = DistributedTrainer(tiny_config(algorithm="a2sgd", epochs=3,
                                               max_iterations_per_epoch=12)).train()
        assert a2sgd.final_metric >= dense.final_metric - 15.0

    def test_replicas_synchronized_after_training(self):
        trainer = DistributedTrainer(tiny_config(epochs=1, max_iterations_per_epoch=4))
        trainer.train()
        flats = [flatten_parameters(m) for m in trainer.replicas]
        for other in flats[1:]:
            np.testing.assert_allclose(flats[0], other, atol=1e-6)

    def test_timeline_records_every_iteration(self):
        trainer = DistributedTrainer(tiny_config(epochs=2, max_iterations_per_epoch=5))
        trainer.train()
        assert trainer.timeline.iterations == 10
        assert trainer.timeline.compute_s > 0
        assert trainer.timeline.communication_s > 0

    def test_deterministic_given_seed(self):
        m1 = DistributedTrainer(tiny_config(seed=5)).train()
        m2 = DistributedTrainer(tiny_config(seed=5)).train()
        assert m1.metric == m2.metric
        assert m1.train_loss == m2.train_loss

    def test_different_world_sizes_run(self):
        for world_size in (1, 2, 4):
            config = tiny_config(world_size=world_size, epochs=1, max_iterations_per_epoch=3)
            metrics = DistributedTrainer(config).train()
            assert len(metrics.epochs) == 1


class TestLanguageModelTraining:
    def test_lstm_perplexity_improves(self):
        config = TrainerConfig(model="lstm_ptb", preset="tiny", algorithm="a2sgd",
                               world_size=2, epochs=2, seed=0, max_iterations_per_epoch=15,
                               seq_len=10, num_train=6000, num_test=1200, base_lr=5.0)
        metrics = DistributedTrainer(config).train()
        assert metrics.metric_name == "perplexity"
        # An untrained model starts far above the 200-token uniform baseline;
        # a couple of epochs must bring perplexity down.
        assert metrics.metric[-1] < metrics.metric[0]
        assert np.isfinite(metrics.final_metric)

    def test_lstm_dense_baseline_runs(self):
        config = TrainerConfig(model="lstm_ptb", preset="tiny", algorithm="dense",
                               world_size=2, epochs=1, seed=0, max_iterations_per_epoch=5,
                               seq_len=8, num_train=4000, num_test=800)
        metrics = DistributedTrainer(config).train()
        assert len(metrics.metric) == 1


class TestEvaluation:
    def test_evaluate_returns_percentage(self):
        trainer = DistributedTrainer(tiny_config(epochs=1, max_iterations_per_epoch=2))
        value = trainer.evaluate()
        assert 0.0 <= value <= 100.0

    def test_evaluate_does_not_perturb_weights(self):
        trainer = DistributedTrainer(tiny_config(epochs=1, max_iterations_per_epoch=2))
        before = flatten_parameters(trainer.replicas[0]).copy()
        trainer.evaluate()
        np.testing.assert_array_equal(before, flatten_parameters(trainer.replicas[0]))
