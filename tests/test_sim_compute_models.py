"""Compute-time model tests: formulas, seeding, replay-restore, validation."""

import numpy as np
import pytest

from repro.sim import COMPUTE_MODELS, compute_model_problems, resolve_compute_model
from repro.sim.compute import (
    ConstantComputeModel,
    IntermittentDropoutComputeModel,
    LognormalComputeModel,
    StragglerComputeModel,
)

ALL_NAMES = ["constant", "intermittent_dropout", "lognormal", "straggler"]


class TestRegistry:
    def test_all_models_registered(self):
        assert COMPUTE_MODELS.list() == ALL_NAMES

    def test_resolve_forms(self):
        assert resolve_compute_model(None) is None
        assert isinstance(resolve_compute_model("constant"), ConstantComputeModel)
        model = resolve_compute_model({"name": "straggler", "slowdown": 4.0})
        assert isinstance(model, StragglerComputeModel)
        assert model.slowdown == 4.0
        same = resolve_compute_model(model)
        assert same is model

    def test_resolve_rejects_bad_forms(self):
        with pytest.raises(ValueError):
            resolve_compute_model({"slowdown": 4.0})     # missing name
        with pytest.raises(ValueError):
            resolve_compute_model(3.14)

    def test_problems_surface_errors(self):
        assert compute_model_problems(None) == []
        assert compute_model_problems("constant") == []
        problems = compute_model_problems("warp_speed")
        assert len(problems) == 1 and "compute_model:" in problems[0]
        problems = compute_model_problems({"name": "constant", "compute_s": -1})
        assert len(problems) == 1 and "compute_s" in problems[0]


class TestSampling:
    def test_constant_is_exact(self):
        model = ConstantComputeModel(compute_s=0.02)
        model.bind(3, clock_seed=0)
        for rank in range(3):
            assert model.step_time(rank) == (0.02, 0.0)

    def test_lognormal_is_mean_preserving(self):
        model = LognormalComputeModel(compute_s=0.01, sigma=0.5)
        model.bind(1, clock_seed=0)
        times = [model.step_time(0)[0] for _ in range(20000)]
        assert np.mean(times) == pytest.approx(0.01, rel=0.02)

    def test_straggler_scales_designated_rank(self):
        model = StragglerComputeModel(compute_s=0.01, slowdown=8.0, sigma=0.0)
        model.bind(4, clock_seed=0)
        assert model.step_time(0) == (0.01, 0.0)
        assert model.step_time(3) == (pytest.approx(0.08), 0.0)   # default: last rank

    def test_straggler_explicit_ranks_validated_at_bind(self):
        model = StragglerComputeModel(straggler_ranks=[5])
        with pytest.raises(ValueError, match="out of range"):
            model.bind(4, clock_seed=0)

    def test_dropout_stalls_with_configured_probability(self):
        model = IntermittentDropoutComputeModel(compute_s=0.01, drop_prob=0.25,
                                                downtime_s=1.0)
        model.bind(1, clock_seed=0)
        stalls = [model.step_time(0)[1] for _ in range(8000)]
        assert np.mean([s > 0 for s in stalls]) == pytest.approx(0.25, abs=0.02)
        assert set(stalls) <= {0.0, 1.0}

    def test_per_rank_streams_are_independent(self):
        model = LognormalComputeModel(sigma=0.5)
        model.bind(2, clock_seed=0)
        a = [model.step_time(0)[0] for _ in range(5)]
        b = [model.step_time(1)[0] for _ in range(5)]
        assert a != b

    def test_same_seed_reproduces_draws(self):
        draws = []
        for _ in range(2):
            model = StragglerComputeModel(sigma=0.3)
            model.bind(4, clock_seed=7)
            draws.append([model.step_time(r) for r in range(4) for _ in range(10)])
        assert draws[0] == draws[1]

    def test_different_clock_seeds_differ(self):
        a = LognormalComputeModel()
        a.bind(1, clock_seed=0)
        b = LognormalComputeModel()
        b.bind(1, clock_seed=1)
        assert a.step_time(0) != b.step_time(0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ConstantComputeModel(compute_s=0.0)
        with pytest.raises(ValueError):
            LognormalComputeModel(sigma=-1.0)
        with pytest.raises(ValueError):
            StragglerComputeModel(slowdown=0.0)
        with pytest.raises(ValueError):
            IntermittentDropoutComputeModel(drop_prob=1.5)


class TestRestore:
    @pytest.mark.parametrize("name,kwargs", [
        ("constant", {}),
        ("lognormal", {"sigma": 0.4}),
        ("straggler", {"sigma": 0.3}),
        ("intermittent_dropout", {"drop_prob": 0.3, "sigma": 0.2}),
    ])
    def test_replay_restores_stream_position(self, name, kwargs):
        """restore() replays the recorded draw counts, so future draws match
        an uninterrupted run exactly."""
        reference = COMPUTE_MODELS.create(name, **kwargs)
        reference.bind(3, clock_seed=11)
        consumed = [3, 0, 5]
        for rank, count in enumerate(consumed):
            for _ in range(count):
                reference.step_time(rank)
        expected = [reference.step_time(rank) for rank in range(3)]

        resumed = COMPUTE_MODELS.create(name, **kwargs)
        resumed.bind(3, clock_seed=11)
        resumed.restore(consumed)
        assert resumed.step_counts == consumed
        assert [resumed.step_time(rank) for rank in range(3)] == expected

    def test_restore_requires_matching_world_size(self):
        model = ConstantComputeModel()
        model.bind(2, clock_seed=0)
        with pytest.raises(ValueError):
            model.restore([1, 2, 3])

    def test_to_dict_round_trips_through_resolve(self):
        for name in ALL_NAMES:
            model = COMPUTE_MODELS.create(name)
            clone = resolve_compute_model(model.to_dict())
            assert type(clone) is type(model)
            assert clone.to_dict() == model.to_dict()
