"""Cross-module integration tests tied to specific claims in the paper.

Each test names the paper section/figure it checks.  These are the
"shape" checks: orderings and qualitative behaviours the reproduction must
preserve even though absolute numbers differ from the authors' testbed.
"""

import numpy as np
import pytest

from repro.analysis import GradientDistributionTracker, empirical_gradient_bound_holds
from repro.analysis.convergence import track_gradient_bound_samples
from repro.compress import get_compressor
from repro.core import DistributedTrainer, TrainerConfig
from repro.core.algorithm1 import QuadraticProblem, a2sgd_quadratic_descent
from repro.core.cost_model import CostModel
from repro.core.flatten import flatten_gradients
from repro.tensor import Tensor, functional as F
from repro.utils.timer import median_time


class TestFigure1GradientDistribution:
    """§3 / Figure 1: gradients are bell-shaped around zero and concentrate."""

    def test_gradient_distribution_concentrates_during_training(self):
        from repro.models import build_model
        from repro.data import get_dataset, DataLoader
        from repro.optim import SGD

        model = build_model("fnn3", "tiny", seed=0)
        train, _ = get_dataset("mnist_tiny", num_train=256, num_test=64)
        loader = DataLoader(train, batch_size=32, rng=np.random.default_rng(0))
        optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
        tracker = GradientDistributionTracker(snapshot_iterations=(0, 30))

        iteration = 0
        while iteration <= 30:
            for inputs, targets in loader:
                model.zero_grad()
                loss = F.cross_entropy(model(Tensor(inputs)), targets)
                loss.backward()
                tracker.observe(flatten_gradients(model))
                optimizer.step()
                iteration += 1
                if iteration > 30:
                    break

        snapshots = tracker.snapshots
        assert set(snapshots) == {0, 30}
        # Roughly symmetric around zero at the start...
        assert 0.25 < snapshots[0]["positive_fraction"] < 0.75
        # ...and the distribution tightens as training progresses.
        assert snapshots[30]["std"] < snapshots[0]["std"]

    def test_histogram_mass_concentrated_near_zero(self, rng):
        gradient = rng.standard_normal(50_000) * 0.01
        tracker = GradientDistributionTracker(snapshot_iterations=(0,))
        tracker.observe(gradient)
        snapshot = tracker.snapshots[0]
        centre = len(snapshot["counts"]) // 2
        central_mass = snapshot["counts"][centre - 5:centre + 6].sum()
        assert central_mass > 0.3 * snapshot["counts"].sum()


class TestFigure2ComputationTime:
    """§3 / Figure 2: A2SGD and Gaussian-K are far cheaper to compute than QSGD/Top-K."""

    @pytest.fixture(scope="class")
    def measured_times(self):
        n = 300_000
        gradient = (np.random.default_rng(0).standard_normal(n) * 0.01).astype(np.float32)
        times = {}
        for name in ("a2sgd", "gaussiank", "topk", "qsgd"):
            compressor = get_compressor(name)
            times[name] = median_time(lambda c=compressor: c.compress(gradient), repeats=5)
        return times

    def test_qsgd_is_the_most_expensive(self, measured_times):
        assert measured_times["qsgd"] == max(measured_times.values())

    def test_a2sgd_cheaper_than_qsgd(self, measured_times):
        # The honest measured claim on our CPU kernels is "cheaper": since the
        # bucketed quantization was vectorized, QSGD is no longer orders of
        # magnitude slower than A2SGD here.  The paper's O(n²) reference
        # implementation (Table 2) is charged analytically by CostModel, which
        # is what the Figure 2 benchmark reproduces.
        assert measured_times["a2sgd"] < 0.8 * measured_times["qsgd"]

    def test_a2sgd_same_order_as_topk_on_cpu_kernels(self, measured_times):
        # On the paper's GPU testbed Top-K pays an expensive k-selection; our
        # CPU kernels use argpartition, so the honest measured claim here is
        # only that A2SGD is not asymptotically worse (same order of
        # magnitude), while the GPU-cost ordering is modelled in CostModel.
        assert measured_times["a2sgd"] < 5.0 * measured_times["topk"]

    def test_gaussiank_and_a2sgd_same_order_of_magnitude(self, measured_times):
        ratio = measured_times["gaussiank"] / measured_times["a2sgd"]
        assert 0.2 < ratio < 5.0


class TestTheorem1Assumption3:
    """§3.2: the gradient-bound assumption holds along an A2SGD trajectory."""

    def test_assumption3_bound_exists_on_quadratic_run(self):
        problem = QuadraticProblem(dimension=20, rows_per_worker=100, world_size=4, seed=1)
        rng = np.random.default_rng(0)
        weights, gradients = [], []
        w = np.zeros(problem.dimension)
        for t in range(100):
            rows = rng.integers(0, problem.rows_per_worker, size=16)
            g = problem.gradient(0, w, rows)
            weights.append(w.copy())
            gradients.append(g)
            w = w - 0.05 * g
        norms, distances = track_gradient_bound_samples(weights, gradients, problem.optimum)
        assert empirical_gradient_bound_holds(norms, distances)

    def test_a2sgd_matches_dense_within_factor_on_quadratic(self):
        problem = QuadraticProblem(dimension=25, rows_per_worker=120, world_size=4, seed=3)
        from repro.core.algorithm1 import dense_quadratic_descent
        dense = dense_quadratic_descent(problem, iterations=350, base_lr=0.05)
        a2sgd = a2sgd_quadratic_descent(problem, iterations=350, base_lr=0.05)
        # "Converges similarly like the default distributed SGD algorithm".
        assert a2sgd.final_distance < max(3.0 * dense.final_distance, 0.5)


class TestSection43Complexities:
    """§4.3 / Table 2: communication and computation complexity columns."""

    @pytest.mark.parametrize("model,n", [("fnn3", 199_210), ("vgg16", 14_728_266),
                                         ("resnet20", 269_722), ("lstm_ptb", 66_034_000)])
    def test_a2sgd_traffic_is_64_bits_for_every_model(self, model, n):
        assert get_compressor("a2sgd").wire_bits(n) == 64.0

    def test_dense_traffic_equals_32n_for_lstm(self):
        assert get_compressor("dense").wire_bits(66_034_000) == 32 * 66_034_000

    def test_compression_factor_exceeds_million_for_large_models(self):
        n = 66_034_000
        factor = get_compressor("dense").wire_bits(n) / get_compressor("a2sgd").wire_bits(n)
        assert factor > 1e6


class TestSection44ExecutionTime:
    """§4.4 / Figures 4-5: iteration and total time shapes."""

    @pytest.fixture(scope="class")
    def cost_model(self):
        return CostModel()

    def test_small_models_show_immaterial_differences(self, cost_model):
        for model in ("fnn3", "resnet20"):
            dense = cost_model.iteration_time(model, "dense", 8)
            a2sgd = cost_model.iteration_time(model, "a2sgd", 8)
            gaussiank = cost_model.iteration_time(model, "gaussiank", 8)
            assert abs(a2sgd - dense) / dense < 0.25
            assert abs(gaussiank - dense) / dense < 0.25

    def test_large_models_favor_a2sgd_and_gaussiank(self, cost_model):
        for model in ("vgg16", "lstm_ptb"):
            times = {name: cost_model.iteration_time(model, name, 8)
                     for name in ("dense", "topk", "qsgd", "gaussiank", "a2sgd")}
            assert times["a2sgd"] < times["dense"]
            assert times["gaussiank"] < times["dense"]
            assert times["qsgd"] == max(times.values())

    def test_iteration_time_increases_with_workers_for_dense(self, cost_model):
        """More workers -> more collective time per iteration (§4.4 last paragraph)."""
        comm = [cost_model.communication_time("dense", "lstm_ptb", p) for p in (2, 4, 8, 16)]
        assert all(a < b for a, b in zip(comm, comm[1:]))

    def test_total_time_headline_ratios_for_lstm(self, cost_model):
        """A2SGD beats Top-K and QSGD on LSTM-PTB total time by large factors (§1)."""
        a2sgd = cost_model.total_training_time("lstm_ptb", "a2sgd", 16)
        topk = cost_model.total_training_time("lstm_ptb", "topk", 16)
        qsgd = cost_model.total_training_time("lstm_ptb", "qsgd", 16)
        dense = cost_model.total_training_time("lstm_ptb", "dense", 16)
        assert topk / a2sgd > 2.0          # paper: 3.2x
        assert qsgd / a2sgd > 10.0         # paper: 23.2x
        assert dense / a2sgd > 1.3         # paper: 1.72x


class TestFigure3ConvergenceOrdering:
    """Figure 3: A2SGD tracks dense SGD's accuracy more closely than QSGD."""

    @pytest.fixture(scope="class")
    def results(self):
        out = {}
        for algorithm in ("dense", "a2sgd", "qsgd"):
            config = TrainerConfig(model="fnn3", preset="tiny", algorithm=algorithm,
                                   world_size=4, epochs=3, seed=0, batch_size=16,
                                   max_iterations_per_epoch=10, num_train=384, num_test=96)
            out[algorithm] = DistributedTrainer(config).train()
        return out

    def test_all_algorithms_learn(self, results):
        for algorithm, metrics in results.items():
            assert metrics.final_metric > 15.0, algorithm

    def test_a2sgd_closer_to_dense_than_qsgd(self, results):
        dense = results["dense"].final_metric
        gap_a2sgd = abs(dense - results["a2sgd"].final_metric)
        gap_qsgd = abs(dense - results["qsgd"].final_metric)
        assert gap_a2sgd <= gap_qsgd + 5.0
