"""Tests for the Deep Gradient Compression extension baseline."""

import numpy as np
import pytest

from repro.compress import DGCCompressor, get_compressor
from repro.compress.base import ExchangeKind, sparsity_k


class TestDGCBasics:
    def test_registered(self):
        assert isinstance(get_compressor("dgc"), DGCCompressor)

    def test_exchange_and_flags(self):
        assert DGCCompressor.exchange is ExchangeKind.ALLGATHER
        assert DGCCompressor.uses_error_feedback

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            DGCCompressor(momentum=1.0)
        with pytest.raises(ValueError):
            DGCCompressor(momentum=-0.1)

    def test_payload_layout_and_k(self, gradient_vector):
        compressor = DGCCompressor(ratio=0.01)
        payload, ctx = compressor.compress(gradient_vector)
        k = sparsity_k(gradient_vector.size, 0.01)
        assert ctx["k"] == k
        assert payload.shape == (2 * k,)

    def test_wire_bits_same_as_topk(self):
        assert DGCCompressor(ratio=0.001).wire_bits(10**6) == 32.0 * 1000

    def test_complexity_string(self):
        assert DGCCompressor().computation_complexity(1000) == "O(n + k log n)"


class TestDGCStatefulBehaviour:
    def test_velocity_and_residual_created(self, gradient_vector):
        compressor = DGCCompressor(ratio=0.01)
        compressor.compress(gradient_vector)
        assert compressor._velocity is not None
        assert compressor._residual is not None
        assert compressor._velocity.shape == gradient_vector.shape

    def test_transmitted_coordinates_are_masked(self, gradient_vector):
        compressor = DGCCompressor(ratio=0.01)
        payload, _ = compressor.compress(gradient_vector)
        indices, _values = DGCCompressor.unpack_payload(payload)
        assert np.all(compressor._residual[indices] == 0.0)
        assert np.all(compressor._velocity[indices] == 0.0)

    def test_momentum_accumulates_on_untransmitted_coordinates(self):
        g = np.zeros(100, dtype=np.float32)
        g[:50] = 0.01          # small, never transmitted at ratio 0.01 (k=1)
        g[99] = 1.0            # large, transmitted every time
        compressor = DGCCompressor(ratio=0.01, momentum=0.9, clip_norm_factor=None)
        compressor.compress(g)
        first = compressor._residual[0]
        compressor.compress(g)
        second = compressor._residual[0]
        # With momentum, the residual grows faster than linear accumulation.
        assert second > 2 * first

    def test_clipping_bounds_extreme_values(self):
        g = np.zeros(1000, dtype=np.float32)
        g[0] = 100.0
        compressor = DGCCompressor(ratio=0.01, clip_norm_factor=1.0)
        clipped = compressor._clip(g)
        assert clipped[0] < 100.0
        no_clip = DGCCompressor(ratio=0.01, clip_norm_factor=None)._clip(g)
        assert no_clip[0] == 100.0

    def test_reset_state(self, gradient_vector):
        compressor = DGCCompressor(ratio=0.01)
        compressor.compress(gradient_vector)
        compressor.reset_state()
        assert compressor._velocity is None
        assert compressor._residual is None

    def test_decompress_gathered_shared_with_topk(self, gradient_vector):
        compressor = DGCCompressor(ratio=0.01)
        payload, ctx = compressor.compress(gradient_vector)
        dense = compressor.decompress_gathered([payload], ctx)
        assert dense.shape == gradient_vector.shape
        assert np.count_nonzero(dense) == ctx["k"]


class TestDGCTraining:
    def test_dgc_learns_on_tiny_fnn(self):
        from repro.core import DistributedTrainer, TrainerConfig
        config = TrainerConfig(model="fnn3", preset="tiny", algorithm="dgc", world_size=2,
                               epochs=3, batch_size=16, max_iterations_per_epoch=12,
                               num_train=384, num_test=96, seed=0,
                               compressor_kwargs={"ratio": 0.05})
        metrics = DistributedTrainer(config).train()
        assert metrics.final_metric > 15.0

class TestDGCClipDtype:
    """clip_dtype="float32" keeps the momentum/residual state single
    precision (the threshold scalar's dtype propagates through np.clip);
    the float64 default preserves the historical numerics."""

    def test_default_float64_state(self, gradient_vector):
        compressor = DGCCompressor(ratio=0.01)
        assert compressor.clip_dtype == np.dtype(np.float64)
        compressor.compress(gradient_vector)
        assert compressor._velocity.dtype == np.float64
        assert compressor._residual.dtype == np.float64

    def test_float32_keeps_state_float32(self, gradient_vector):
        compressor = DGCCompressor(ratio=0.01, clip_dtype="float32")
        compressor.compress(gradient_vector)
        assert compressor._velocity.dtype == np.float32
        assert compressor._residual.dtype == np.float32

    def test_invalid_clip_dtype_rejected(self):
        with pytest.raises(ValueError):
            DGCCompressor(clip_dtype="int32")
        with pytest.raises(ValueError):
            DGCCompressor(clip_dtype="float16")

    def test_float32_batched_matches_looped(self, rng):
        P, n = 4, 2048
        G = rng.standard_normal((P, n)).astype(np.float32)
        looped = [DGCCompressor(ratio=0.01, clip_dtype="float32") for _ in range(P)]
        batched = [DGCCompressor(ratio=0.01, clip_dtype="float32") for _ in range(P)]
        for _ in range(3):
            expected = [c.compress(G[p]) for p, c in enumerate(looped)]
            payloads, contexts = DGCCompressor.compress_batch(batched, G)
            for (exp_payload, exp_ctx), payload, ctx in zip(expected, payloads, contexts):
                np.testing.assert_array_equal(payload, exp_payload)
                assert ctx == exp_ctx
        for lc, bc in zip(looped, batched):
            np.testing.assert_array_equal(bc._velocity, lc._velocity)
            np.testing.assert_array_equal(bc._residual, lc._residual)
            assert bc._velocity.dtype == np.float32

    def test_mixed_clip_dtype_batch_falls_back(self, rng):
        P, n = 2, 256
        G = rng.standard_normal((P, n)).astype(np.float32)
        mixed = [DGCCompressor(ratio=0.01, clip_dtype="float32"),
                 DGCCompressor(ratio=0.01, clip_dtype="float64")]
        payloads, contexts = DGCCompressor.compress_batch(mixed, G)
        singles = [DGCCompressor(ratio=0.01, clip_dtype="float32"),
                   DGCCompressor(ratio=0.01, clip_dtype="float64")]
        for p, (payload, ctx) in enumerate(zip(payloads, contexts)):
            exp_payload, exp_ctx = singles[p].compress(G[p])
            np.testing.assert_array_equal(payload, exp_payload)
            assert ctx == exp_ctx
