"""Synchronization strategies: exact equality against the pre-redesign
synchronizer, local-SGD schedules, gossip, corruption and the exchange-kind
negotiation."""

import time
from typing import Dict, List, Sequence, Tuple

import numpy as np
import pytest

from repro.comm.backend import CollectiveOp
from repro.compress.base import ExchangeKind
from repro.core.callbacks import Callback
from repro.core.flatten import flatten_parameters
from repro.core.timeline import SyncReport
from repro.core.trainer import DistributedTrainer, TrainerConfig
from repro.sync import (
    GradientCorruption,
    SyncSpec,
    get_aggregator,
    merge_reports,
)
from repro.sync.strategies import AllreduceStrategy


# --------------------------------------------------------------------- #
# The pre-redesign GradientSynchronizer, copied verbatim from the seed
# (commit cd5e9e4, core/synchronizer.py) and adapted only by renaming
# dense_model_average -> finalize so it drops into trainer.sync_strategy.
# It is the executable specification the strategy layer must reproduce
# bit for bit when sync = allreduce + mean.
# --------------------------------------------------------------------- #
class LegacySynchronizerReference:
    syncs_parameters = False

    @staticmethod
    def post_step_pending() -> bool:
        return False

    def __init__(self, world, compressors):
        self.world = world
        self.compressors = list(compressors)

    def exchange(self, gradients: Sequence[np.ndarray]) -> Tuple[List[np.ndarray], SyncReport]:
        if len(gradients) != self.world.world_size:
            raise ValueError("one gradient per rank is required")
        n = int(np.asarray(gradients[0]).size)
        for g in gradients:
            if np.asarray(g).size != n:
                raise ValueError("all ranks must contribute gradients of equal length")

        reference = self.compressors[0]
        exchange_kind = reference.exchange
        wire_bits = reference.wire_bits(n, self.world.world_size)
        logical_bytes = wire_bits / 8.0

        payloads, contexts, compression_times = [], [], []
        for compressor, gradient in zip(self.compressors, gradients):
            start = time.perf_counter()
            payload, ctx = compressor.compress(np.asarray(gradient, dtype=np.float32))
            compression_times.append(time.perf_counter() - start)
            payloads.append(payload)
            contexts.append(ctx)

        comm_before = self.world.simulated_comm_time
        if exchange_kind is ExchangeKind.ALLREDUCE:
            exchanged = self.world.allreduce(payloads, CollectiveOp.MEAN,
                                             logical_bytes=logical_bytes)
        else:
            exchanged = self.world.allgather(payloads, logical_bytes=logical_bytes)
        comm_time = self.world.simulated_comm_time - comm_before

        new_gradients: List[np.ndarray] = []
        for rank, (compressor, ctx) in enumerate(zip(self.compressors, contexts)):
            start = time.perf_counter()
            if exchange_kind is ExchangeKind.ALLREDUCE:
                rebuilt = compressor.decompress(exchanged[rank], ctx)
            else:
                rebuilt = compressor.decompress_gathered(exchanged[rank], ctx)
            compression_times[rank] += time.perf_counter() - start
            new_gradients.append(np.asarray(rebuilt, dtype=np.float32))

        report = SyncReport(
            compression_time_s=float(max(compression_times)),
            comm_time_s=float(comm_time),
            wire_bits_per_worker=float(wire_bits),
            exchange=exchange_kind.value,
        )
        return new_gradients, report

    def exchange_batched(self, G: np.ndarray) -> Tuple[np.ndarray, SyncReport]:
        G = np.asarray(G, dtype=np.float32)
        if G.ndim != 2 or G.shape[0] != self.world.world_size:
            raise ValueError("bad gradient matrix shape")
        n = G.shape[1]
        reference = self.compressors[0]
        exchange_kind = reference.exchange
        wire_bits = reference.wire_bits(n, self.world.world_size)
        logical_bytes = wire_bits / 8.0
        batch = type(reference)

        start = time.perf_counter()
        payloads, contexts = batch.compress_batch(self.compressors, G)
        kernel_time = time.perf_counter() - start

        comm_before = self.world.simulated_comm_time
        if exchange_kind is ExchangeKind.ALLREDUCE:
            exchanged = self.world.allreduce(payloads, CollectiveOp.MEAN,
                                             logical_bytes=logical_bytes)
        else:
            exchanged = self.world.allgather(payloads, logical_bytes=logical_bytes)
        comm_time = self.world.simulated_comm_time - comm_before

        start = time.perf_counter()
        new_matrix = batch.decompress_batch(self.compressors, exchanged, contexts)
        kernel_time += time.perf_counter() - start

        report = SyncReport(
            compression_time_s=float(kernel_time) / self.world.world_size,
            comm_time_s=float(comm_time),
            wire_bits_per_worker=float(wire_bits),
            exchange=exchange_kind.value,
        )
        return new_matrix, report

    def finalize(self, parameter_vectors: Sequence[np.ndarray]) -> List[np.ndarray]:
        nbytes = float(np.asarray(parameter_vectors[0]).nbytes)
        return self.world.allreduce(list(parameter_vectors), CollectiveOp.MEAN,
                                    logical_bytes=nbytes)


def make_config(model: str, world_size: int, fused: bool, *, algorithm: str = "a2sgd",
                sync=None, epochs: int = 1, iterations: int = 3) -> TrainerConfig:
    kwargs = dict(model=model, preset="tiny", algorithm=algorithm,
                  world_size=world_size, epochs=epochs,
                  max_iterations_per_epoch=iterations, batch_size=8,
                  fused_pipeline=fused, sync=sync)
    if model == "lstm_ptb":
        kwargs.update(num_train=800, num_test=160, seq_len=8)
    else:
        kwargs.update(num_train=128, num_test=32)
    return TrainerConfig(**kwargs)


def final_params(trainer: DistributedTrainer) -> np.ndarray:
    return np.stack([flatten_parameters(m) for m in trainer.replicas])


def train_params(config: TrainerConfig, legacy: bool = False) -> np.ndarray:
    trainer = DistributedTrainer(config)
    if legacy:
        trainer.sync_strategy = LegacySynchronizerReference(trainer.world,
                                                            trainer.compressors)
    trainer.train()
    return final_params(trainer)


class TestExactEqualityWithPreRedesignSynchronizer:
    """Acceptance: default sync=allreduce + aggregator=mean training is
    bit-identical to the pre-redesign trainer for fnn3 and lstm_ptb at
    world sizes {2, 4, 8}, on both the fused and the seed path."""

    @pytest.mark.parametrize("world_size", [2, 4, 8])
    @pytest.mark.parametrize("fused", [True, False], ids=["fused", "seed"])
    def test_fnn3(self, world_size, fused):
        config = make_config("fnn3", world_size, fused)
        np.testing.assert_array_equal(
            train_params(config), train_params(config, legacy=True))

    @pytest.mark.parametrize("world_size", [2, 4, 8])
    @pytest.mark.parametrize("fused", [True, False], ids=["fused", "seed"])
    def test_lstm_ptb(self, world_size, fused):
        config = make_config("lstm_ptb", world_size, fused, iterations=2)
        np.testing.assert_array_equal(
            train_params(config), train_params(config, legacy=True))


class ReportRecorder(Callback):
    def __init__(self):
        self.reports: List[SyncReport] = []

    def on_iteration_end(self, state) -> None:
        self.reports.append(state.report)


class TestLocalSGD:
    @pytest.mark.parametrize("fused", [True, False], ids=["fused", "seed"])
    def test_period_one_is_bit_identical_to_default(self, fused):
        default = make_config("fnn3", 4, fused, epochs=2)
        local = make_config("fnn3", 4, fused, epochs=2,
                            sync={"strategy": "local_sgd", "period": 1})
        np.testing.assert_array_equal(train_params(default), train_params(local))

    def test_periodic_sync_heals_replica_drift(self):
        """Between syncs replicas drift apart; every H-th iteration the
        parameter exchange makes them identical again (mean aggregation)."""
        config = make_config("fnn3", 4, True, algorithm="dense", iterations=6,
                             sync={"strategy": "local_sgd", "period": 3})
        config.num_train = 256        # 8 batches/shard so all 6 iterations run
        trainer = DistributedTrainer(config)

        spreads: List[float] = []

        class Spread(Callback):
            def on_iteration_end(self, state) -> None:
                P = final_params(state.trainer)
                spreads.append(float(np.abs(P - P[0]).max()))

        trainer.callbacks.append(Spread())
        trainer.train()
        # Iterations (1-indexed) 3 and 6 are sync points: zero spread.
        assert spreads[2] == 0.0 and spreads[5] == 0.0
        # Local-only iterations leave the replicas apart.
        assert spreads[0] > 0.0 and spreads[1] > 0.0 and spreads[4] > 0.0

    def test_reports_label_local_and_sync_iterations(self):
        config = make_config("fnn3", 4, True, algorithm="dense", iterations=4,
                             sync={"strategy": "local_sgd", "period": 2})
        trainer = DistributedTrainer(config)
        recorder = ReportRecorder()
        trainer.callbacks.append(recorder)
        trainer.train()
        exchanges = [r.exchange for r in recorder.reports]
        assert exchanges == ["local", "local+parameter_allreduce"] * 2
        assert recorder.reports[0].comm_time_s == 0.0
        assert recorder.reports[0].wire_bits_per_worker == 0.0
        assert recorder.reports[1].comm_time_s > 0.0

    def test_gradient_wire_traffic_only_on_sync_with_period_one(self):
        """H=1 never exchanges parameters — it is the gradient allreduce."""
        config = make_config("fnn3", 4, True, iterations=3,
                             sync={"strategy": "local_sgd", "period": 1})
        trainer = DistributedTrainer(config)
        trainer.train()
        counts = trainer.world.stats.collective_counts
        # 3 gradient allreduces + 1 final dense consolidation, no allgathers.
        assert counts.get("allreduce_ring", 0) == 4
        assert "allgather" not in counts
        assert "neighbor_exchange" not in counts


class TestGossip:
    def test_fully_connected_matches_mean_allreduce_within_float32(self):
        """Acceptance: gossip on a complete graph equals dense mean-allreduce
        training up to float32 rounding."""
        dense = make_config("fnn3", 4, True, algorithm="dense", epochs=2)
        gossip = make_config("fnn3", 4, True, algorithm="dense", epochs=2,
                             sync={"strategy": "gossip",
                                   "topology": "fully_connected"})
        a, b = train_params(dense), train_params(gossip)
        np.testing.assert_allclose(a, b, rtol=2e-5, atol=2e-6)

    @pytest.mark.parametrize("fused", [True, False], ids=["fused", "seed"])
    def test_ring_gossip_runs_and_exchanges_neighborwise(self, fused):
        config = make_config("fnn3", 4, fused, algorithm="dense", iterations=4,
                             sync={"strategy": "gossip", "topology": "ring"})
        trainer = DistributedTrainer(config)
        trainer.train()
        counts = trainer.world.stats.collective_counts
        assert counts.get("neighbor_exchange", 0) == 4
        # Replicas are consolidated by the final dense exchange.
        P = final_params(trainer)
        np.testing.assert_array_equal(P, np.tile(P[0], (4, 1)))

    def test_star_topology_runs(self):
        config = make_config("fnn3", 5, True, algorithm="dense", iterations=2,
                             sync={"strategy": "gossip", "topology": "star"})
        DistributedTrainer(config).train()

    def test_fused_and_seed_paths_agree_to_float32(self):
        sync = {"strategy": "gossip", "topology": "ring"}
        a = train_params(make_config("fnn3", 4, True, algorithm="dense", sync=sync))
        b = train_params(make_config("fnn3", 4, False, algorithm="dense", sync=sync))
        np.testing.assert_allclose(a, b, rtol=2e-5, atol=2e-6)

    def test_requires_topology(self):
        from repro.comm.inprocess import InProcessWorld
        from repro.compress.registry import get_compressor
        from repro.sync.strategies import GossipStrategy

        world = InProcessWorld(2)
        compressors = [get_compressor("dense") for _ in range(2)]
        with pytest.raises(ValueError, match="requires a topology"):
            GossipStrategy().bind(world, compressors, get_aggregator("mean"))


class TestCorruption:
    def test_sign_flip_changes_training(self):
        clean = make_config("fnn3", 4, True, algorithm="dense")
        flipped = make_config("fnn3", 4, True, algorithm="dense",
                              sync={"corrupt_ranks": [0]})
        assert not np.array_equal(train_params(clean), train_params(flipped))

    def test_corruption_applies_on_both_paths_identically(self):
        sync = {"corrupt_ranks": [1], "corruption": "scale", "corruption_scale": 3.0}
        fused = make_config("fnn3", 4, True, algorithm="dense", sync=sync)
        seed = make_config("fnn3", 4, False, algorithm="dense", sync=sync)
        np.testing.assert_allclose(train_params(fused), train_params(seed),
                                   rtol=2e-5, atol=2e-6)

    def test_geometric_median_shrugs_off_byzantine_ranks_where_mean_fails(self):
        """Acceptance scenario: corrupted ranks drag mean-aggregated training
        far from the clean trajectory; the geometric median stays close."""
        clean = train_params(make_config("fnn3", 8, True, algorithm="dense",
                                         iterations=5))
        corrupt = {"corrupt_ranks": [1, 5], "corruption": "scale",
                   "corruption_scale": -25.0}
        mean_run = train_params(make_config(
            "fnn3", 8, True, algorithm="dense", iterations=5, sync=corrupt))
        robust_run = train_params(make_config(
            "fnn3", 8, True, algorithm="dense", iterations=5,
            sync={**corrupt, "aggregator": "geometric_median"}))
        mean_drift = float(np.abs(mean_run - clean).max())
        robust_drift = float(np.abs(robust_run - clean).max())
        assert robust_drift < 0.2 * mean_drift

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown corruption"):
            GradientCorruption([0], kind="explode")
        with pytest.raises(ValueError, match="non-negative"):
            GradientCorruption([-1])
        corruption = GradientCorruption([3])
        with pytest.raises(ValueError, match="out of range"):
            corruption.validate_world(2)

    def test_out_of_range_rank_rejected_at_trainer_construction(self):
        config = make_config("fnn3", 2, True, sync={"corrupt_ranks": [5]})
        with pytest.raises(ValueError, match="out of range"):
            DistributedTrainer(config)


class TestExchangeKindNegotiation:
    def test_robust_aggregator_rejected_for_allgather_compressor(self):
        config = make_config("fnn3", 4, True, algorithm="topk",
                             sync={"aggregator": "coordinate_median"})
        with pytest.raises(ValueError, match="allreduce-kind compressors only"):
            DistributedTrainer(config)

    def test_robust_aggregator_gathers_a2sgd_payloads(self):
        """With a robust aggregator the allreduce-kind payloads travel by
        allgather and are combined off-wire — no payload allreduce happens."""
        config = make_config("fnn3", 4, True, algorithm="a2sgd", iterations=3,
                             sync={"aggregator": "trimmed_mean"})
        trainer = DistributedTrainer(config)
        recorder = ReportRecorder()
        trainer.callbacks.append(recorder)
        trainer.train()
        counts = trainer.world.stats.collective_counts
        # 3 gradient exchanges + the final parameter consolidation, which a
        # robust aggregator also performs by gathering.
        assert counts.get("allgather", 0) == 4
        assert "allreduce_ring" not in counts
        assert all(r.exchange == "allgather" for r in recorder.reports)

    def test_robust_aggregator_allowed_for_parameter_only_strategies(self):
        """local_sgd (H>1) and gossip never put gradients on the wire, so
        any aggregator composes with any compressor."""
        for sync in ({"strategy": "local_sgd", "period": 2,
                      "aggregator": "coordinate_median"},
                     {"strategy": "gossip", "topology": "ring",
                      "aggregator": "trimmed_mean"}):
            config = make_config("fnn3", 4, True, algorithm="topk",
                                 iterations=2, sync=sync)
            DistributedTrainer(config).train()

    def test_mean_aggregator_keeps_the_native_collective(self):
        config = make_config("fnn3", 4, True, algorithm="a2sgd", iterations=2)
        trainer = DistributedTrainer(config)
        trainer.train()
        counts = trainer.world.stats.collective_counts
        assert "allgather" not in counts
        assert counts.get("allreduce_ring", 0) == 3   # 2 iters + finalize


class TestStrategyPlumbing:
    def test_compressor_validation_messages_preserved(self):
        from repro.comm.inprocess import InProcessWorld
        from repro.compress.registry import get_compressor

        world = InProcessWorld(2)
        mean = get_aggregator("mean")
        with pytest.raises(ValueError, match="need one compressor per rank"):
            AllreduceStrategy().bind(world, [get_compressor("dense")], mean)
        shared = get_compressor("dense")
        with pytest.raises(ValueError, match="must not be shared"):
            AllreduceStrategy().bind(world, [shared, shared], mean)
        with pytest.raises(ValueError, match="same compression algorithm"):
            AllreduceStrategy().bind(
                world, [get_compressor("dense"), get_compressor("a2sgd")], mean)

    def test_merge_reports(self):
        gradient = SyncReport(compression_time_s=1.0, comm_time_s=2.0,
                              wire_bits_per_worker=64.0, exchange="allreduce")
        parameter = SyncReport(compression_time_s=0.0, comm_time_s=3.0,
                               wire_bits_per_worker=32.0,
                               exchange="parameter_allreduce")
        merged = merge_reports(gradient, parameter)
        assert merged.comm_time_s == 5.0
        assert merged.wire_bits_per_worker == 96.0
        assert merged.exchange == "allreduce+parameter_allreduce"
        assert merge_reports(gradient, None) is gradient

    def test_checkpoint_restores_sync_phase(self, tmp_path):
        from repro.core.checkpoint import load_checkpoint, save_checkpoint

        config = make_config("fnn3", 2, True, algorithm="dense", iterations=4,
                             sync={"strategy": "local_sgd", "period": 3})
        trainer = DistributedTrainer(config)
        trainer.train()
        path = save_checkpoint(trainer, tmp_path / "ckpt.npz")
        resumed = DistributedTrainer(config)
        load_checkpoint(resumed, path)
        assert resumed.sync_strategy._step == trainer._global_iteration

    def test_spec_json_round_trip_constructs_every_strategy(self):
        """Acceptance: all strategies/aggregators are constructible from a
        JSON-round-tripped spec."""
        import json

        from repro.comm.inprocess import InProcessWorld
        from repro.compress.registry import get_compressor

        setups = [
            {"strategy": "allreduce", "aggregator": "mean"},
            {"strategy": "allreduce", "aggregator": "trimmed_mean",
             "aggregator_kwargs": {"trim_ratio": 0.25}},
            {"strategy": "allreduce", "aggregator": "geometric_median"},
            {"strategy": "local_sgd", "period": 4,
             "aggregator": "coordinate_median"},
            {"strategy": "gossip", "topology": "star", "aggregator": "mean"},
        ]
        world = InProcessWorld(4)
        for payload in setups:
            round_tripped = json.loads(json.dumps(payload))
            spec = SyncSpec.from_dict(round_tripped)
            assert SyncSpec.from_dict(spec.to_dict()) == spec
            compressors = [get_compressor("dense") for _ in range(4)]
            strategy = spec.build(world, compressors)
            assert strategy.aggregator is not None


class TestPostStepPending:
    """The trainer's seed path flattens parameters only when the strategy
    will actually exchange them this iteration."""

    def test_local_sgd_pending_only_on_sync_iterations(self):
        config = make_config("fnn3", 4, False, algorithm="dense", iterations=4,
                             sync={"strategy": "local_sgd", "period": 2})
        trainer = DistributedTrainer(config)
        strategy = trainer.sync_strategy
        assert not strategy.post_step_pending()     # before any exchange
        pending = []

        class Probe(Callback):
            def on_iteration_end(self, state) -> None:
                pending.append(state.trainer.sync_strategy.post_step_pending())

        trainer.callbacks.append(Probe())
        trainer.train()
        assert pending == [False, True, False, True]

    def test_allreduce_never_pending(self):
        config = make_config("fnn3", 2, False, iterations=2)
        trainer = DistributedTrainer(config)
        trainer.train()
        assert not trainer.sync_strategy.post_step_pending()


class TestWireBitsAccounting:
    """trainer.wire_bits_per_iteration is strategy-aware: parameter-phase
    strategies report their own traffic, not the compressor's constant."""

    def test_allreduce_reports_compressor_bits(self):
        trainer = DistributedTrainer(make_config("fnn3", 4, True))
        assert trainer.wire_bits_per_iteration == 64.0       # a2sgd

    def test_local_sgd_reports_amortized_parameter_bits(self):
        trainer = DistributedTrainer(make_config(
            "fnn3", 4, True, sync={"strategy": "local_sgd", "period": 4}))
        n = trainer.num_parameters
        assert trainer.wire_bits_per_iteration == 32.0 * n / 4

    def test_local_sgd_h1_reports_compressor_bits(self):
        trainer = DistributedTrainer(make_config(
            "fnn3", 4, True, sync={"strategy": "local_sgd", "period": 1}))
        assert trainer.wire_bits_per_iteration == 64.0

    def test_gossip_reports_neighbor_payload_bits(self):
        trainer = DistributedTrainer(make_config(
            "fnn3", 4, True, algorithm="dense",
            sync={"strategy": "gossip", "topology": "ring"}))
        n = trainer.num_parameters
        assert trainer.wire_bits_per_iteration == 2.0 * 32.0 * n   # degree 2

    def test_sync_setups_report_distinct_traffic_in_sweeps(self):
        """The synchronization_sweep traffic column differentiates setups."""
        from repro.analysis.sweeps import synchronization_sweep

        results = synchronization_sweep(model="fnn3", algorithm="a2sgd",
                                        world_size=4, epochs=1,
                                        max_iterations_per_epoch=2)
        bits = {label: row["wire_bits"] for label, row in results.items()}
        assert bits["allreduce"] == 64.0
        assert bits["local_sgd_h4"] > bits["allreduce"]
        assert bits["gossip_ring"] > bits["local_sgd_h4"]


class TestSyncSpecMerge:
    """merged_with owns the CLI's switch-and-reset override policy."""

    def test_plain_override_keeps_other_fields(self):
        base = SyncSpec(strategy="local_sgd", period=4)
        merged = base.merged_with({"aggregator": "coordinate_median"})
        assert merged["strategy"] == "local_sgd" and merged["period"] == 4
        assert merged["aggregator"] == "coordinate_median"

    def test_strategy_switch_resets_period_and_topology(self):
        base = SyncSpec(strategy="gossip", topology="star")
        merged = base.merged_with({"strategy": "allreduce"})
        assert merged["topology"] == "ring" and merged["period"] == 1

    def test_alias_is_not_a_switch(self):
        base = SyncSpec(strategy="localsgd", period=4)
        merged = base.merged_with({"strategy": "local_sgd"})
        assert merged["period"] == 4

    def test_aggregator_switch_resets_kwargs_but_alias_does_not(self):
        base = SyncSpec(aggregator="trimmed_mean",
                        aggregator_kwargs={"trim_ratio": 0.25})
        assert base.merged_with({"aggregator": "mean"})["aggregator_kwargs"] == {}
        assert base.merged_with({"aggregator": "trimmed_mean"}
                                )["aggregator_kwargs"] == {"trim_ratio": 0.25}

    def test_explicit_override_wins_over_reset(self):
        base = SyncSpec(strategy="gossip", topology="star")
        merged = base.merged_with({"strategy": "local_sgd", "period": 8})
        assert merged["period"] == 8
