"""Execution backends: registry, validation, bit-identity, lifecycle.

The headline guarantee: ``backend="multiprocessing"`` is **bit-identical** to
``backend="inprocess"`` — final parameters, per-epoch losses and metrics —
because the workers run the same executors on the same shared storage with
the same centrally-derived seeds.  Everything else (registry exposure,
pinned incompatibility messages, dead-worker reporting, segment reaping) is
the supporting contract.
"""

import os
import signal

import numpy as np
import pytest

from repro.backends import (
    EXECUTION_BACKENDS,
    InProcessBackend,
    MultiprocessingBackend,
    WorkerDiedError,
    backend_spec_problems,
    leaked_segments,
)
from repro.core.spec import ExperimentSpec, SpecError
from repro.core.trainer import DistributedTrainer, TrainerConfig
from repro.registry import public_registries
from repro.utils.rng import replica_init_seed


def train_params_and_metrics(backend, *, model="fnn3", world_size=2, taped=True,
                             iterations=3, **backend_kwargs):
    config = TrainerConfig(model=model, preset="tiny", algorithm="a2sgd",
                           world_size=world_size, epochs=1, seed=0,
                           max_iterations_per_epoch=iterations, taped=taped,
                           backend=backend, backend_kwargs=backend_kwargs)
    trainer = DistributedTrainer(config)
    try:
        metrics = trainer.train()
        params = trainer.flat_world.param_matrix.copy()
    finally:
        trainer.close()
    payload = metrics.as_dict()
    payload.pop("wall_compute_time_s", None)   # measured wall clock differs
    payload.pop("simulated_time_s", None)      # NaN-filled when untimed
    return params, payload, metrics.final_metric


# --------------------------------------------------------------------------- #
# registry (the 12th component registry)
# --------------------------------------------------------------------------- #
class TestBackendRegistry:
    def test_both_backends_registered(self):
        assert EXECUTION_BACKENDS.list() == ["inprocess", "multiprocessing"]
        assert isinstance(EXECUTION_BACKENDS.create("inprocess"), InProcessBackend)
        backend = EXECUTION_BACKENDS.create("multiprocessing", num_workers=2)
        assert isinstance(backend, MultiprocessingBackend)
        backend.close()

    def test_exposed_as_public_registry(self):
        assert "backends" in public_registries()

    def test_did_you_mean_on_typo(self):
        problems = backend_spec_problems("multiprocesing", {})
        assert len(problems) == 1
        assert "did you mean" in problems[0]
        assert "multiprocessing" in problems[0]

    def test_components_cli_lists_backends(self, capsys):
        from repro.cli import main
        assert main(["components", "--registry", "backends"]) == 0
        out = capsys.readouterr().out
        assert "inprocess" in out and "multiprocessing" in out


# --------------------------------------------------------------------------- #
# spec validation: pinned incompatibility messages
# --------------------------------------------------------------------------- #
class TestBackendValidation:
    def test_async_strategy_rejected_with_pinned_text(self):
        spec = ExperimentSpec(backend="multiprocessing",
                              sync={"strategy": "async_ps"})
        with pytest.raises(SpecError) as excinfo:
            spec.validate()
        assert ("backend 'multiprocessing' cannot run sync strategy "
                "'async_ps': the event-driven virtual clock executes one rank "
                "at a time; use backend 'inprocess'") in excinfo.value.problems

    def test_faults_rejected_with_pinned_text(self):
        spec = ExperimentSpec(backend="multiprocessing", faults="crash_stop")
        with pytest.raises(SpecError) as excinfo:
            spec.validate()
        assert ('backend \'multiprocessing\' does not support fault injection; '
                'remove the "faults" section or use backend \'inprocess\''
                ) in excinfo.value.problems

    def test_unfused_rejected(self):
        spec = ExperimentSpec(backend="multiprocessing", fused_pipeline=False)
        with pytest.raises(SpecError, match="requires the fused pipeline"):
            spec.validate()

    def test_language_model_rejected(self):
        spec = ExperimentSpec(backend="multiprocessing", model="lstm_ptb")
        with pytest.raises(SpecError, match="does not support language models"):
            spec.validate()

    def test_num_workers_cannot_exceed_world_size(self):
        spec = ExperimentSpec(backend="multiprocessing", world_size=4,
                              backend_kwargs={"num_workers": 8})
        with pytest.raises(SpecError,
                           match=r"num_workers \(8\) cannot exceed world_size \(4\)"):
            spec.validate()

    def test_bad_kwargs_fail_constructibility(self):
        spec = ExperimentSpec(backend="multiprocessing",
                              backend_kwargs={"num_workers": 0})
        with pytest.raises(SpecError, match="cannot be constructed with"):
            spec.validate()

    def test_trainer_bind_time_raises_same_text(self):
        config = TrainerConfig(model="fnn3", world_size=2,
                               backend="multiprocessing",
                               sync={"strategy": "async_ps"})
        with pytest.raises(ValueError, match="cannot run sync strategy 'async_ps'"):
            DistributedTrainer(config)

    def test_valid_spec_passes_and_roundtrips(self, tmp_path):
        spec = ExperimentSpec(backend="multiprocessing", world_size=2,
                              backend_kwargs={"num_workers": 2}).validate()
        path = spec.to_file(tmp_path / "spec.json")
        again = ExperimentSpec.from_file(path)
        assert again.backend == "multiprocessing"
        assert again.backend_kwargs == {"num_workers": 2}
        assert again.to_trainer_config().backend == "multiprocessing"

    def test_backend_kwargs_deep_copied_into_trainer_config(self):
        spec = ExperimentSpec(backend="multiprocessing",
                              backend_kwargs={"num_workers": 2})
        config = spec.to_trainer_config()
        config.backend_kwargs["num_workers"] = 99
        assert spec.backend_kwargs == {"num_workers": 2}

    def test_inprocess_accepts_everything(self):
        ExperimentSpec(backend="inprocess", sync={"strategy": "async_ps"}).validate()
        ExperimentSpec(backend="inprocess", faults="crash_stop").validate()
        ExperimentSpec(backend="inprocess", fused_pipeline=False).validate()


# --------------------------------------------------------------------------- #
# seed derivation
# --------------------------------------------------------------------------- #
class TestSeedDerivation:
    def test_replica_init_seed_is_rank_independent(self):
        # Algorithm 1 line 1: identical initialization on every rank.
        assert replica_init_seed(7, 0) == replica_init_seed(7, 3) == 7

    def test_distinct_experiments_get_distinct_seeds(self):
        assert replica_init_seed(1, 0) != replica_init_seed(2, 0)


# --------------------------------------------------------------------------- #
# bit-identity: the acceptance criterion
# --------------------------------------------------------------------------- #
class TestBitIdentity:
    @pytest.mark.parametrize("model", ["fnn3", "resnet20"])
    @pytest.mark.parametrize("world_size", [2, 4])
    def test_taped_run_bit_identical(self, model, world_size):
        p_in, m_in, f_in = train_params_and_metrics(
            "inprocess", model=model, world_size=world_size, taped=True)
        p_mp, m_mp, f_mp = train_params_and_metrics(
            "multiprocessing", model=model, world_size=world_size, taped=True,
            num_workers=2)
        assert np.array_equal(p_in, p_mp)
        assert m_in == m_mp
        assert f_in == f_mp

    def test_eager_fused_run_bit_identical(self):
        p_in, m_in, _ = train_params_and_metrics("inprocess",
                                                 model="fnn3", taped=False)
        p_mp, m_mp, _ = train_params_and_metrics("multiprocessing",
                                                 model="fnn3", taped=False,
                                                 num_workers=2)
        assert np.array_equal(p_in, p_mp)
        assert m_in == m_mp

    def test_one_worker_per_rank_bit_identical(self):
        p_in, _, _ = train_params_and_metrics("inprocess", world_size=3)
        p_mp, _, _ = train_params_and_metrics("multiprocessing", world_size=3)
        assert np.array_equal(p_in, p_mp)

    def test_uneven_shards_bit_identical(self):
        # 3 ranks over 2 workers: shards of 2 and 1.
        p_in, _, _ = train_params_and_metrics("inprocess", world_size=3)
        p_mp, _, _ = train_params_and_metrics("multiprocessing", world_size=3,
                                              num_workers=2)
        assert np.array_equal(p_in, p_mp)

    def test_no_segments_leak_after_runs(self):
        assert leaked_segments() == []


# --------------------------------------------------------------------------- #
# worker lifecycle
# --------------------------------------------------------------------------- #
class TestWorkerLifecycle:
    def _spawned_trainer(self):
        config = TrainerConfig(model="fnn3", preset="tiny", world_size=2,
                               epochs=1, max_iterations_per_epoch=2, seed=0,
                               backend="multiprocessing",
                               backend_kwargs={"num_workers": 2})
        trainer = DistributedTrainer(config)
        batches = [next(iter(loader)) for loader in trainer.loaders]
        trainer._classification_gradients_fused(batches)    # spawns workers
        return trainer, batches

    def test_sigkilled_worker_raises_naming_the_rank(self):
        trainer, batches = self._spawned_trainer()
        try:
            process, ranks = trainer.backend._processes[1]
            os.kill(process.pid, signal.SIGKILL)
            process.join(timeout=30.0)
            with pytest.raises(WorkerDiedError, match=r"worker 1 \(ranks 1\.\.1\)"):
                trainer._classification_gradients_fused(batches)
        finally:
            trainer.close()
        assert leaked_segments() == []

    def test_close_reaps_workers_and_segments(self):
        trainer, _ = self._spawned_trainer()
        processes = [p for p, _ in trainer.backend._processes]
        trainer.close()
        assert all(not p.is_alive() for p in processes)
        assert leaked_segments() == []

    def test_close_is_idempotent(self):
        trainer, _ = self._spawned_trainer()
        trainer.close()
        trainer.close()
        assert leaked_segments() == []

    def test_close_before_spawn_is_safe(self):
        config = TrainerConfig(model="fnn3", world_size=2,
                               backend="multiprocessing")
        trainer = DistributedTrainer(config)
        trainer.close()             # workers never spawned; arenas reclaimed
        assert leaked_segments() == []

    def test_batch_shape_change_rejected(self):
        trainer, batches = self._spawned_trainer()
        try:
            bad = [(b[0][: max(1, len(b[0]) // 2)],
                    b[1][: max(1, len(b[1]) // 2)]) for b in batches]
            with pytest.raises(ValueError, match="batch shape changed"):
                trainer._classification_gradients_fused(bad)
        finally:
            trainer.close()


# --------------------------------------------------------------------------- #
# CLI integration
# --------------------------------------------------------------------------- #
class TestBackendCli:
    def test_run_with_multiprocessing_backend(self, capsys):
        from repro.cli import main
        code = main(["run", "--model", "fnn3", "--workers", "2",
                     "--epochs", "1", "--iterations", "2",
                     "--backend", "multiprocessing", "--backend-workers", "2"])
        assert code == 0
        assert "fnn3" in capsys.readouterr().out
        assert leaked_segments() == []

    def test_backend_flag_canonicalizes(self):
        from repro.cli import _spec_from_run_args, _build_parser
        args = _build_parser().parse_args(
            ["run", "--backend", "multiprocessing", "--backend-workers", "3"])
        spec = _spec_from_run_args(args)
        assert spec.backend == "multiprocessing"
        assert spec.backend_kwargs == {"num_workers": 3}

    def test_backend_switch_resets_spec_backend_kwargs(self, tmp_path):
        # --backend inprocess on a multiprocessing spec must drop the spec's
        # num_workers (written for the other backend), same policy as sync.
        from repro.cli import _build_parser, _spec_from_run_args
        path = ExperimentSpec(backend="multiprocessing", world_size=2,
                              backend_kwargs={"num_workers": 2}
                              ).to_file(tmp_path / "spec.json")
        args = _build_parser().parse_args(
            ["run", "--config", str(path), "--backend", "inprocess"])
        spec = _spec_from_run_args(args)
        assert spec.backend == "inprocess"
        assert spec.backend_kwargs == {}
        spec.validate()

    def test_example_spec_is_valid(self):
        spec = ExperimentSpec.from_file("examples/spec_multiprocessing.json")
        spec.validate()
        assert spec.backend == "multiprocessing"
