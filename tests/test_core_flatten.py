"""Tests for gradient/parameter flattening."""

import numpy as np
import pytest

from repro import nn
from repro.core.flatten import (
    average_parameters,
    flatten_gradients,
    flatten_parameters,
    unflatten_into_gradients,
    unflatten_into_parameters,
)
from repro.tensor import Tensor


def small_model() -> nn.Module:
    return nn.Sequential(nn.Linear(3, 4), nn.ReLU(), nn.Linear(4, 2))


class TestFlattening:
    def test_flatten_parameters_length(self):
        model = small_model()
        flat = flatten_parameters(model)
        assert flat.shape == (model.num_parameters(),)
        assert flat.dtype == np.float32

    def test_flatten_gradients_requires_backward(self):
        model = small_model()
        with pytest.raises(ValueError):
            flatten_gradients(model, missing_as_zero=False)

    def test_missing_gradients_become_zeros(self):
        model = small_model()
        flat = flatten_gradients(model, missing_as_zero=True)
        np.testing.assert_array_equal(flat, np.zeros(model.num_parameters()))

    def test_flatten_gradients_after_backward(self, rng):
        model = small_model()
        out = model(Tensor(rng.standard_normal((5, 3)).astype(np.float32)))
        out.sum().backward()
        flat = flatten_gradients(model)
        assert flat.shape == (model.num_parameters(),)
        assert np.abs(flat).sum() > 0

    def test_order_matches_named_parameters(self, rng):
        model = small_model()
        out = model(Tensor(rng.standard_normal((2, 3)).astype(np.float32)))
        out.sum().backward()
        flat = flatten_gradients(model)
        first = model.parameters()[0]
        np.testing.assert_array_equal(flat[:first.size], first.grad.reshape(-1))

    def test_unflatten_into_gradients_roundtrip(self, rng):
        model = small_model()
        vector = rng.standard_normal(model.num_parameters()).astype(np.float32)
        unflatten_into_gradients(model, vector)
        np.testing.assert_allclose(flatten_gradients(model), vector)

    def test_unflatten_parameters_roundtrip(self, rng):
        model = small_model()
        vector = rng.standard_normal(model.num_parameters()).astype(np.float32)
        unflatten_into_parameters(model, vector)
        np.testing.assert_allclose(flatten_parameters(model), vector)

    def test_unflatten_wrong_length_raises(self):
        model = small_model()
        with pytest.raises(ValueError):
            unflatten_into_gradients(model, np.zeros(3))
        with pytest.raises(ValueError):
            unflatten_into_parameters(model, np.zeros(model.num_parameters() + 1))

    def test_average_parameters(self):
        models = [small_model() for _ in range(3)]
        for i, model in enumerate(models):
            unflatten_into_parameters(model, np.full(model.num_parameters(), float(i),
                                                     dtype=np.float32))
        average_parameters(models)
        for model in models:
            np.testing.assert_allclose(flatten_parameters(model),
                                       np.ones(model.num_parameters()), rtol=1e-6)

    def test_average_parameters_empty_raises(self):
        with pytest.raises(ValueError):
            average_parameters([])
