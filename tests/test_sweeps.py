"""Tests for the sweep helpers used by the CLI and benchmarks."""

import pytest

from repro.analysis.sweeps import best_algorithm_by_total_time, convergence_sweep, cost_sweep
from repro.core.cost_model import CostModel
from repro.utils.serialization import save_json


class TestConvergenceSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return convergence_sweep("fnn3", algorithms=("dense", "a2sgd"), world_sizes=(2,),
                                 epochs=2, max_iterations_per_epoch=5)

    def test_structure(self, sweep):
        assert set(sweep) == {"2"}
        assert set(sweep["2"]) == {"dense", "a2sgd"}
        entry = sweep["2"]["a2sgd"]
        assert len(entry["metric"]) == 2
        assert entry["metric_name"] == "top1"
        assert entry["wire_bits"] == 64.0

    def test_serializable(self, sweep, tmp_path):
        path = save_json(sweep, tmp_path / "sweep.json")
        assert path.exists()

    def test_dense_traffic_larger_than_a2sgd(self, sweep):
        assert sweep["2"]["dense"]["wire_bits"] > sweep["2"]["a2sgd"]["wire_bits"]


class TestCostSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return cost_sweep(models=("vgg16", "lstm_ptb"), algorithms=("dense", "a2sgd", "qsgd"),
                          world_sizes=(2, 8), cost_model=CostModel())

    def test_structure(self, sweep):
        assert set(sweep) == {"vgg16", "lstm_ptb"}
        entry = sweep["vgg16"]
        assert entry["world_sizes"] == [2, 8]
        assert set(entry["algorithms"]) == {"dense", "a2sgd", "qsgd"}
        assert len(entry["algorithms"]["a2sgd"]["iteration_s"]) == 2

    def test_total_time_consistent_with_iteration_time(self, sweep):
        entry = sweep["lstm_ptb"]["algorithms"]["a2sgd"]
        assert entry["total_s"][0] > entry["iteration_s"][0]

    def test_best_algorithm_helper(self, sweep):
        best = best_algorithm_by_total_time(sweep, "lstm_ptb", 8)
        assert best == "a2sgd"

    def test_serializable(self, sweep, tmp_path):
        path = save_json(sweep, tmp_path / "cost.json")
        assert path.exists()
