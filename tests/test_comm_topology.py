"""Communication-graph topologies and the neighbor_exchange collective."""

import numpy as np
import pytest

from repro.comm import InProcessWorld
from repro.comm.collectives import neighbor_exchange
from repro.comm.network_model import CollectiveTimeModel, ethernet_10gbps
from repro.comm.topology import (
    TOPOLOGIES,
    FullyConnectedTopology,
    RingTopology,
    StarTopology,
    get_topology,
)


class TestGraphs:
    def test_registry_lists_the_graphs(self):
        assert TOPOLOGIES.list() == ["fully_connected", "hierarchical",
                                     "ring", "star"]
        assert isinstance(get_topology("full"), FullyConnectedTopology)

    def test_ring_neighbors(self):
        ring = RingTopology()
        assert ring.neighbors(0, 5) == (1, 4)
        assert ring.neighbors(2, 5) == (1, 3)
        # P=2 collapses both directions onto the single other rank.
        assert ring.neighbors(0, 2) == (1,)
        assert ring.neighbors(0, 1) == ()

    def test_star_neighbors(self):
        star = StarTopology()
        assert star.neighbors(0, 4) == (1, 2, 3)
        assert star.neighbors(3, 4) == (0,)
        assert star.max_degree(4) == 3
        assert star.degree(2, 4) == 1

    def test_fully_connected_neighbors(self):
        full = FullyConnectedTopology()
        assert full.neighbors(1, 4) == (0, 2, 3)
        assert full.mean_degree(4) == 3.0

    def test_closed_neighborhood_sorted_and_includes_self(self):
        ring = RingTopology()
        assert ring.closed_neighborhood(0, 5) == (0, 1, 4)
        assert ring.closed_neighborhood(4, 5) == (0, 3, 4)

    def test_closed_neighborhood_validates_rank_and_world(self):
        ring = RingTopology()
        with pytest.raises(ValueError):
            ring.closed_neighborhood(5, 5)
        with pytest.raises(ValueError):
            ring.validate(0)

    def test_degrees_independent_of_world_size_for_ring(self):
        ring = RingTopology()
        for p in (3, 8, 64):
            assert ring.max_degree(p) == 2


class TestNeighborExchange:
    def test_each_rank_receives_its_closed_neighborhood(self, rng):
        P = 5
        buffers = [np.full(4, float(r), dtype=np.float32) for r in range(P)]
        gathered, trace = neighbor_exchange(buffers, RingTopology())
        for rank in range(P):
            received = sorted(float(a[0]) for a in gathered[rank])
            expected = sorted(float(q) for q in
                              RingTopology().closed_neighborhood(rank, P))
            assert received == expected

    def test_payloads_are_shared_read_only_views(self, rng):
        buffers = [rng.standard_normal(8).astype(np.float32) for _ in range(4)]
        gathered, _ = neighbor_exchange(buffers, FullyConnectedTopology())
        sample = gathered[0][1]
        assert not sample.flags.writeable
        # Every rank sees the same staged storage for a given contributor
        # (one copy per contributor, not per listener).
        assert gathered[0][1] is gathered[2][1] or gathered[0][1].base is not None

    def test_trace_reflects_graph_degree_not_world_size(self, rng):
        P = 8
        buffers = [rng.standard_normal(16).astype(np.float32) for _ in range(P)]
        _, ring_trace = neighbor_exchange(buffers, RingTopology())
        _, full_trace = neighbor_exchange(buffers, FullyConnectedTopology())
        assert ring_trace.kind == "neighbor_exchange"
        assert ring_trace.rounds == 2                      # ring max degree
        assert full_trace.rounds == P - 1
        assert ring_trace.bytes_sent_per_rank == 2 * buffers[0].nbytes
        assert full_trace.bytes_sent_per_rank == (P - 1) * buffers[0].nbytes

    def test_world_prices_by_max_degree(self, rng):
        network = ethernet_10gbps()
        P = 8
        buffers = [rng.standard_normal(1000).astype(np.float32) for _ in range(P)]
        ring_world = InProcessWorld(P, network=network)
        ring_world.neighbor_exchange(buffers, RingTopology())
        star_world = InProcessWorld(P, network=network)
        star_world.neighbor_exchange(buffers, StarTopology())
        model = CollectiveTimeModel(network)
        nbytes = buffers[0].nbytes
        assert ring_world.simulated_comm_time == pytest.approx(
            model.neighbor_exchange(nbytes, 2))
        assert star_world.simulated_comm_time == pytest.approx(
            model.neighbor_exchange(nbytes, P - 1))
        # The hub-bound star costs more than the constant-degree ring.
        assert star_world.simulated_comm_time > ring_world.simulated_comm_time

    def test_world_validates_contribution_count(self, rng):
        world = InProcessWorld(4)
        with pytest.raises(ValueError):
            world.neighbor_exchange([np.zeros(3)] * 3, RingTopology())

