"""Fault-injection subsystem unit tests: seeded fault schedules, the live
membership mask, membership-aware collectives and topology re-routing, the
injector's counters/pricing, and the declarative ``faults`` spec section
(tentpole: fault injection and graceful degradation)."""

import json
import math

import numpy as np
import pytest

from repro.comm.inprocess import CollectiveOp, InProcessWorld
from repro.comm.topology import get_topology
from repro.core.spec import ExperimentSpec, SpecError
from repro.faults import (FAULT_MODELS, FaultInjector, FaultSpec, Membership,
                          fault_model_problems, resolve_fault_model)


# ---------------------------------------------------------------------- #
# membership mask
# ---------------------------------------------------------------------- #
class TestMembership:
    def test_starts_all_alive(self):
        m = Membership(4)
        assert m.all_alive
        assert m.num_alive == 4
        assert m.alive_ranks() == [0, 1, 2, 3]
        assert m.dead_ranks() == []

    def test_transitions(self):
        m = Membership(4)
        m.set_alive(2, False)
        assert not m.all_alive
        assert not m.is_alive(2)
        assert m.alive_ranks() == [0, 1, 3]
        assert m.dead_ranks() == [2]
        m.set_alive(2, True)
        assert m.all_alive

    def test_out_of_range_rank_rejected(self):
        m = Membership(2)
        with pytest.raises(ValueError, match="out of range"):
            m.set_alive(2, False)

    def test_state_round_trip(self):
        m = Membership(4)
        m.set_alive(1, False)
        m.set_alive(3, False)
        fresh = Membership(4)
        fresh.load_state_arrays(m.state_arrays())
        assert fresh.alive_ranks() == [0, 2]

    def test_state_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="world_size"):
            Membership(4).load_state_arrays(Membership(2).state_arrays())


# ---------------------------------------------------------------------- #
# fault schedules
# ---------------------------------------------------------------------- #
class TestCrashStop:
    def test_listed_ranks_die_at_at_s_forever(self):
        model = FAULT_MODELS.create("crash_stop", ranks=[1, 3], at_s=2.0)
        model.bind(4, seed=0)
        assert model.down_interval(1, 1.9) is None
        assert model.down_interval(1, 2.0) == (2.0, math.inf)
        assert model.down_interval(3, 100.0) == (2.0, math.inf)
        # unlisted ranks never fail
        assert model.down_interval(0, 5.0) is None
        assert model.down_interval(2, 5.0) is None

    def test_default_ranks_is_last_rank(self):
        model = FAULT_MODELS.create("crash_stop", at_s=0.5)
        model.bind(4, seed=0)
        assert model.down_interval(3, 1.0) == (0.5, math.inf)
        assert all(model.down_interval(r, 1.0) is None for r in range(3))

    def test_out_of_range_rank_rejected_at_bind(self):
        model = FAULT_MODELS.create("crash_stop", ranks=[5])
        with pytest.raises(ValueError, match="out of range"):
            model.bind(4, seed=0)

    def test_negative_at_s_rejected(self):
        with pytest.raises(ValueError, match="at_s must be >= 0"):
            FAULT_MODELS.create("crash_stop", at_s=-1.0)


class TestTransientBlackout:
    GRID = [k * 0.05 for k in range(200)]  # 10 simulated seconds

    def test_regeneration_is_deterministic(self):
        # A second instance (same seed) must reproduce the exact timeline —
        # the property checkpoint resume relies on: no RNG state is saved,
        # the memoized schedule is simply regenerated.
        a = FAULT_MODELS.create("transient_blackout",
                                mean_down_s=0.2, mean_up_s=0.5)
        b = FAULT_MODELS.create("transient_blackout",
                                mean_down_s=0.2, mean_up_s=0.5)
        a.bind(4, seed=7)
        b.bind(4, seed=7)
        for t in self.GRID:
            for rank in range(4):
                assert a.down_interval(rank, t) == b.down_interval(rank, t)

    def test_per_rank_streams_are_world_size_invariant(self):
        # Rank r's timeline is a pure function of (seed, r): the same
        # --seed-faults reproduces it across world sizes 2, 4 and 8.
        models = {}
        for world_size in (2, 4, 8):
            model = FAULT_MODELS.create("transient_blackout",
                                        mean_down_s=0.2, mean_up_s=0.5)
            model.bind(world_size, seed=11)
            models[world_size] = model
        for t in self.GRID:
            for rank in (0, 1):
                intervals = {models[p].down_interval(rank, t)
                             for p in (2, 4, 8)}
                assert len(intervals) == 1

    def test_interval_boundaries(self):
        # Convention: down on [start, end) — the rank is back up at exactly
        # t = end, which is when the rejoin catch-up runs.
        model = FAULT_MODELS.create("transient_blackout",
                                    mean_down_s=0.3, mean_up_s=0.3)
        model.bind(1, seed=3)
        interval = None
        t = 0.0
        while interval is None:
            t += 0.01
            interval = model.down_interval(0, t)
        start, end = interval
        assert start <= t < end
        assert model.down_interval(0, start) == interval
        assert model.down_interval(0, end) != interval

    def test_ranks_subset(self):
        model = FAULT_MODELS.create("transient_blackout", mean_down_s=0.1,
                                    mean_up_s=0.1, ranks=[0])
        model.bind(4, seed=0)
        assert any(model.down_interval(0, t) is not None for t in self.GRID)
        assert all(model.down_interval(1, t) is None for t in self.GRID)

    def test_nonpositive_means_rejected(self):
        with pytest.raises(ValueError, match="mean_down_s must be > 0"):
            FAULT_MODELS.create("transient_blackout", mean_down_s=0.0)
        with pytest.raises(ValueError, match="mean_up_s must be > 0"):
            FAULT_MODELS.create("transient_blackout", mean_up_s=-2)


class TestMessageLoss:
    def test_draws_are_deterministic_and_stateless(self):
        a = FAULT_MODELS.create("message_loss", p=0.3)
        b = FAULT_MODELS.create("message_loss", p=0.3)
        a.bind(4, seed=5)
        b.bind(4, seed=5)
        draws = [a.message_dropped(1, i) for i in range(200)]
        # Query order does not matter (pure in (seed, rank, index)).
        assert [b.message_dropped(1, i) for i in reversed(range(200))] \
            == draws[::-1]

    def test_loss_rate_matches_p(self):
        model = FAULT_MODELS.create("message_loss", p=0.4)
        model.bind(2, seed=9)
        dropped = sum(model.message_dropped(0, i) for i in range(2000))
        assert 0.3 < dropped / 2000 < 0.5

    def test_p_zero_never_drops(self):
        model = FAULT_MODELS.create("message_loss", p=0.0)
        model.bind(2, seed=0)
        assert not any(model.message_dropped(0, i) for i in range(100))

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError, match=r"p must be in \[0, 1\)"):
            FAULT_MODELS.create("message_loss", p=1.0)


class TestSlowNode:
    def test_stalls_are_timing_only_and_deterministic(self):
        model = FAULT_MODELS.create("slow_node", drop_prob=0.5,
                                    downtime_s=0.25)
        model.bind(2, seed=4)
        assert not model.affects_membership
        assert not model.affects_messages
        assert model.affects_timing
        stalls = [model.extra_stall(0, i) for i in range(100)]
        assert set(stalls) == {0.0, 0.25}
        assert stalls == [model.extra_stall(0, i) for i in range(100)]

    def test_unaffected_ranks_never_stall(self):
        model = FAULT_MODELS.create("slow_node", drop_prob=0.9,
                                    downtime_s=0.25, ranks=[1])
        model.bind(2, seed=4)
        assert all(model.extra_stall(0, i) == 0.0 for i in range(50))


class TestResolveFaultModel:
    def test_none_forms(self):
        assert resolve_fault_model(None) is None
        assert resolve_fault_model("none") is None
        assert resolve_fault_model({"name": "none"}) is None

    def test_name_and_dict_and_instance(self):
        assert resolve_fault_model("crash_stop").name == "crash_stop"
        model = resolve_fault_model({"name": "message_loss", "p": 0.2})
        assert model.p == 0.2
        assert resolve_fault_model(model) is model

    def test_errors(self):
        with pytest.raises(ValueError, match="'none' takes no arguments"):
            resolve_fault_model({"name": "none", "p": 0.5})
        with pytest.raises(ValueError, match="requires a 'name' key"):
            resolve_fault_model({"p": 0.5})
        assert fault_model_problems({"name": "warp"})
        assert fault_model_problems(None) == []


# ---------------------------------------------------------------------- #
# topology re-routing around dead ranks
# ---------------------------------------------------------------------- #
class TestTopologyRerouting:
    def test_ring_walks_past_dead_ranks(self):
        ring = get_topology("ring")
        alive = [True, False, True, True]
        # Rank 0's dead clockwise neighbour 1 is skipped; the ring stays
        # closed through rank 2.
        assert ring.alive_neighbors(0, 4, alive) == (2, 3)
        assert ring.alive_neighbors(2, 4, alive) == (0, 3)
        assert ring.alive_closed_neighborhood(0, 4, alive) == (0, 2, 3)

    def test_ring_with_single_survivor(self):
        ring = get_topology("ring")
        alive = [False, False, True, False]
        assert ring.alive_neighbors(2, 4, alive) == ()
        assert ring.alive_closed_neighborhood(2, 4, alive) == (2,)

    def test_ring_healthy_mask_matches_static_graph(self):
        ring = get_topology("ring")
        alive = [True] * 4
        for rank in range(4):
            assert ring.alive_neighbors(rank, 4, alive) \
                == ring.neighbors(rank, 4)

    def test_star_promotes_lowest_survivor_to_hub(self):
        star = get_topology("star")
        alive = [False, True, True, True]
        assert star.alive_neighbors(1, 4, alive) == (2, 3)
        assert star.alive_neighbors(2, 4, alive) == (1,)
        assert star.alive_neighbors(3, 4, alive) == (1,)

    def test_degraded_degree_accounting(self):
        ring = get_topology("ring")
        alive = [True, False, True, True]
        assert ring.alive_max_degree(4, alive) == 2
        assert ring.alive_degree(1, 4, alive) == 0  # dead ranks have none


# ---------------------------------------------------------------------- #
# membership-aware collectives
# ---------------------------------------------------------------------- #
def degraded_world(world_size: int, dead) -> InProcessWorld:
    world = InProcessWorld(world_size)
    world.membership = Membership(world_size)
    for rank in dead:
        world.membership.set_alive(rank, False)
    return world


class TestMembershipCollectives:
    def test_allreduce_mean_renormalizes_over_survivors(self):
        world = degraded_world(4, dead=[3])
        buffers = [np.full(3, float(r), dtype=np.float64) for r in range(4)]
        results = world.allreduce(buffers, op=CollectiveOp.MEAN)
        for rank in (0, 1, 2):
            np.testing.assert_allclose(results[rank], 1.0)  # (0+1+2)/3
        # The dead rank is excluded from the mean and gets its own
        # contribution back untouched.
        np.testing.assert_array_equal(results[3], buffers[3])

    def test_allgather_skips_dead_contributions(self):
        world = degraded_world(4, dead=[1])
        buffers = [np.full(2, float(r)) for r in range(4)]
        gathered = world.allgather(buffers)
        assert gathered[1] == []
        for rank in (0, 2, 3):
            assert len(gathered[rank]) == 3
            np.testing.assert_array_equal(np.stack(gathered[rank])[:, 0],
                                          [0.0, 2.0, 3.0])

    def test_broadcast_from_dead_root_rejected(self):
        world = degraded_world(4, dead=[0])
        buffers = [np.zeros(2) for _ in range(4)]
        with pytest.raises(ValueError, match="root 0 is not alive"):
            world.broadcast(buffers, root=0)

    def test_all_dead_collective_raises(self):
        world = degraded_world(2, dead=[0, 1])
        with pytest.raises(RuntimeError, match="every rank dead"):
            world.allreduce([np.zeros(2), np.zeros(2)])

    def test_neighbor_exchange_reroutes_ring(self):
        world = degraded_world(4, dead=[1])
        buffers = [np.full(2, float(r)) for r in range(4)]
        gathered = world.neighbor_exchange(buffers, get_topology("ring"))
        assert gathered[1] == []
        # Rank 0's degraded closed neighbourhood walks past dead rank 1.
        np.testing.assert_array_equal(np.stack(gathered[0])[:, 0],
                                      [0.0, 2.0, 3.0])

    def test_healthy_membership_is_the_fast_path(self):
        world = InProcessWorld(2)
        world.membership = Membership(2)
        buffers = [np.ones(2), np.full(2, 3.0)]
        results = world.allreduce(buffers, op=CollectiveOp.MEAN)
        np.testing.assert_allclose(results[0], 2.0)
        np.testing.assert_allclose(results[1], 2.0)


# ---------------------------------------------------------------------- #
# the injector: counters, pricing, checkpoint round-trip
# ---------------------------------------------------------------------- #
class TestFaultInjector:
    def test_message_counters_advance_draw_indices(self):
        model = FAULT_MODELS.create("message_loss", p=0.5)
        injector = FaultInjector(model, world_size=2, seed=3)
        draws = [injector.message_dropped(0) for _ in range(50)]
        assert injector._message_counters[0] == 50
        assert injector._message_counters[1] == 0
        assert injector.report.dropped_messages == sum(draws)
        # The same draws come straight from the stateless model.
        assert draws == [model.message_dropped(0, i) for i in range(50)]

    def test_discovery_penalty_prices_timeout_plus_backoff_ladder(self):
        injector = FaultInjector(FAULT_MODELS.create("crash_stop"),
                                 world_size=2, seed=0, barrier_timeout_s=0.1,
                                 max_retries=3, backoff_base_s=0.05)
        penalty = injector.discovery_penalty_s()
        assert penalty == pytest.approx(0.1 + 0.05 * (1 + 2 + 4))
        assert injector.report.barrier_timeouts == 1
        assert injector.report.retries == 3

    def test_retransmit_penalty_is_bounded(self):
        # p close to 1: every attempt is lost, yet the ladder is bounded by
        # max_retries and the final attempt is forced through.
        model = FAULT_MODELS.create("message_loss", p=0.999)
        injector = FaultInjector(model, world_size=1, seed=0,
                                 max_retries=2, backoff_base_s=0.05)
        penalty = injector.retransmit_penalty_s(0)
        assert penalty == pytest.approx(0.05 * (1 + 2))
        assert injector.report.retries == 2

    def test_retransmit_penalty_zero_without_message_faults(self):
        injector = FaultInjector(FAULT_MODELS.create("crash_stop"),
                                 world_size=2, seed=0)
        assert injector.retransmit_penalty_s(0) == 0.0

    def test_state_round_trip_preserves_draw_positions(self):
        model = FAULT_MODELS.create("message_loss", p=0.5)
        injector = FaultInjector(model, world_size=2, seed=3)
        for _ in range(17):
            injector.message_dropped(0)
        injector.membership.set_alive(1, False)
        injector.report.record_down(1)
        injector.report.record_downtime(1, 0.75)
        injector.needs_catchup[1] = True
        state = injector.state_arrays()

        fresh = FaultInjector(FAULT_MODELS.create("message_loss", p=0.5),
                              world_size=2, seed=3)
        fresh.load_state_arrays(state)
        assert fresh.membership.dead_ranks() == [1]
        assert fresh.needs_catchup[1]
        assert fresh.report.as_dict() == injector.report.as_dict()
        # Future draws continue the original sequence, not restart it.
        expected = [model.message_dropped(0, i) for i in range(17, 27)]
        assert [fresh.message_dropped(0) for _ in range(10)] == expected


# ---------------------------------------------------------------------- #
# the declarative faults section
# ---------------------------------------------------------------------- #
class TestFaultSpec:
    def test_resolve_forms(self):
        assert FaultSpec.resolve(None).model == "none"
        assert not FaultSpec.resolve(None).active
        assert FaultSpec.resolve("crash_stop").model == "crash_stop"
        spec = FaultSpec.resolve({"model": "message_loss",
                                  "model_kwargs": {"p": 0.1}})
        assert spec.active and spec.model_kwargs == {"p": 0.1}
        assert FaultSpec.resolve(spec) is spec

    def test_json_round_trip(self):
        spec = FaultSpec(model="transient_blackout",
                         model_kwargs={"mean_down_s": 0.2, "mean_up_s": 0.8},
                         barrier_timeout_s=0.2, max_retries=5,
                         backoff_base_s=0.01)
        assert FaultSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) \
            == spec

    def test_unknown_field_rejected_with_suggestion(self):
        with pytest.raises(ValueError, match="unknown faults field"):
            FaultSpec.from_dict({"model": "crash_stop",
                                 "barier_timeout_s": 0.1})

    def test_merged_with_resets_kwargs_on_model_switch(self):
        spec = FaultSpec(model="transient_blackout",
                         model_kwargs={"mean_down_s": 0.2})
        merged = spec.merged_with({"model": "crash_stop"})
        assert merged["model_kwargs"] == {}
        kept = spec.merged_with({"model": "transient_blackout"})
        assert kept["model_kwargs"] == {"mean_down_s": 0.2}

    def test_problems_pins_construction_error_text(self):
        spec = FaultSpec(model="transient_blackout",
                         model_kwargs={"mean_down_s": -1})
        assert spec.problems(world_size=2) == [
            "fault model 'transient_blackout' cannot be constructed with "
            "{'mean_down_s': -1}: mean_down_s must be > 0, got -1.0"]

    def test_problems_catches_bad_policy_fields(self):
        spec = FaultSpec(model="crash_stop", barrier_timeout_s=-1,
                         max_retries=-2, backoff_base_s="soon")
        problems = "\n".join(spec.problems())
        assert "barrier_timeout_s must be a number >= 0" in problems
        assert "max_retries must be an integer >= 0" in problems
        assert "backoff_base_s must be a number >= 0" in problems

    def test_problems_checks_ranks_against_world_size(self):
        spec = FaultSpec(model="crash_stop", model_kwargs={"ranks": [7]})
        assert spec.problems(world_size=8) == []
        assert any("out of range" in p for p in spec.problems(world_size=4))

    def test_inactive_model_kwargs_rejected(self):
        spec = FaultSpec(model="none", model_kwargs={"p": 0.1})
        assert any("fault model is 'none'" in p for p in spec.problems())

    def test_build_returns_none_when_inactive(self):
        assert FaultSpec().build(world_size=4) is None

    def test_build_bridge_forces_injector_without_model(self):
        injector = FaultSpec().build(world_size=4, bridge_compute_stalls=True)
        assert injector is not None
        assert injector.model is None
        assert injector.bridge_compute_stalls

    def test_build_binds_model_and_policy(self):
        spec = FaultSpec(model="crash_stop", model_kwargs={"at_s": 1.0},
                         barrier_timeout_s=0.3, max_retries=2,
                         backoff_base_s=0.02)
        injector = spec.build(world_size=4, seed=9)
        assert injector.model.world_size == 4
        assert injector.model.seed == 9
        assert injector.barrier_timeout_s == 0.3
        assert injector.max_retries == 2
        assert injector.report.model == "crash_stop"


class TestExperimentSpecFaults:
    def test_spec_carries_and_round_trips_faults(self):
        spec = ExperimentSpec(model="fnn3", world_size=4,
                              faults={"model": "message_loss",
                                      "model_kwargs": {"p": 0.1}},
                              fault_seed=3).validate()
        clone = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone.fault_seed == 3
        assert FaultSpec.resolve(clone.faults) \
            == FaultSpec.resolve(spec.faults)

    def test_validate_reports_exact_fault_error(self):
        spec = ExperimentSpec(model="fnn3", world_size=2,
                              faults={"model": "transient_blackout",
                                      "model_kwargs": {"mean_down_s": -1}})
        with pytest.raises(SpecError) as excinfo:
            spec.validate()
        assert ("fault model 'transient_blackout' cannot be constructed with "
                "{'mean_down_s': -1}: mean_down_s must be > 0, got -1.0"
                ) in str(excinfo.value)

    def test_validate_rejects_bad_fault_seed_and_type(self):
        with pytest.raises(SpecError, match="fault_seed"):
            ExperimentSpec(model="fnn3", fault_seed=1.5).validate()
        with pytest.raises(SpecError):
            ExperimentSpec(model="fnn3", faults=3.14).validate()

    def test_trainer_config_inherits_faults(self):
        spec = ExperimentSpec(model="fnn3", world_size=2,
                              faults="crash_stop", fault_seed=5)
        config = spec.to_trainer_config()
        assert FaultSpec.resolve(config.faults).model == "crash_stop"
        assert config.fault_seed == 5

    def test_registry_is_exposed(self):
        assert set(FAULT_MODELS.list()) >= {"crash_stop",
                                             "transient_blackout",
                                             "message_loss", "slow_node"}
