"""Aggregator unit + property tests: permutation invariance, mean agreement,
Byzantine robustness, and Weiszfeld convergence."""

import numpy as np
import pytest

from repro.comm.backend import CollectiveOp
from repro.sync import AGGREGATORS, get_aggregator
from repro.sync.aggregators import (
    CoordinateMedianAggregator,
    GeometricMedianAggregator,
    MeanAggregator,
    TrimmedMeanAggregator,
)

ALL_NAMES = ["mean", "trimmed_mean", "coordinate_median", "geometric_median"]
ROBUST_NAMES = ["trimmed_mean", "coordinate_median", "geometric_median"]


class TestRegistry:
    def test_all_aggregators_registered(self):
        assert AGGREGATORS.list() == sorted(ALL_NAMES)

    def test_aliases_resolve(self):
        assert isinstance(get_aggregator("average"), MeanAggregator)
        assert isinstance(get_aggregator("median"), CoordinateMedianAggregator)
        assert isinstance(get_aggregator("geomed"), GeometricMedianAggregator)

    def test_kwargs_forwarded(self):
        agg = get_aggregator("trimmed_mean", trim_ratio=0.3)
        assert agg.trim_ratio == 0.3

    def test_only_mean_advertises_a_collective_op(self):
        assert MeanAggregator.collective_op is CollectiveOp.MEAN
        for name in ROBUST_NAMES:
            assert AGGREGATORS.get(name).collective_op is None
            assert AGGREGATORS.get(name).robust


class TestBasicCombine:
    def test_mean_matches_numpy(self, rng):
        X = rng.standard_normal((6, 40)).astype(np.float32)
        np.testing.assert_array_equal(MeanAggregator().combine(X), X.mean(axis=0))

    def test_requires_matrix(self, rng):
        for name in ALL_NAMES:
            with pytest.raises(ValueError):
                get_aggregator(name).combine(rng.standard_normal(8))

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_identical_rows_reproduce_the_row(self, name, rng):
        """With zero disagreement every aggregator returns the common vector."""
        row = rng.standard_normal(33).astype(np.float32)
        X = np.tile(row, (8, 1))
        np.testing.assert_allclose(get_aggregator(name).combine(X), row,
                                   rtol=1e-6, atol=1e-7)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_single_contributor_is_identity(self, name, rng):
        row = rng.standard_normal(17).astype(np.float32)
        np.testing.assert_allclose(get_aggregator(name).combine(row[None]), row,
                                   rtol=1e-6, atol=1e-7)


class TestProperties:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_permutation_invariant(self, name, rng):
        """Shuffling the rank order never changes the combined vector."""
        X = rng.standard_normal((8, 64)).astype(np.float32)
        aggregator = get_aggregator(name)
        reference = aggregator.combine(X)
        for seed in range(5):
            perm = np.random.default_rng(seed).permutation(8)
            np.testing.assert_allclose(aggregator.combine(X[perm]), reference,
                                       rtol=1e-6, atol=1e-7)

    @pytest.mark.parametrize("name", ROBUST_NAMES)
    def test_agrees_with_mean_when_no_ranks_corrupted(self, name, rng):
        """On honest iid contributions the robust combines estimate the same
        center as the mean (statistical agreement, not bitwise)."""
        center = rng.standard_normal(48).astype(np.float32)
        X = center + 0.01 * rng.standard_normal((16, 48)).astype(np.float32)
        robust = get_aggregator(name).combine(X)
        mean = X.mean(axis=0)
        # The combines differ by at most a fraction of the per-rank noise.
        assert np.abs(robust - mean).max() < 0.01
        np.testing.assert_allclose(robust, mean, atol=0.01)

    def test_trimmed_mean_equals_mean_when_nothing_trimmed(self, rng):
        """k = floor(trim_ratio * P) = 0 degenerates to the exact mean."""
        X = rng.standard_normal((6, 20)).astype(np.float32)
        result = TrimmedMeanAggregator(trim_ratio=0.1).combine(X)  # k = 0
        np.testing.assert_array_equal(result, X.mean(axis=0))

    @pytest.mark.parametrize("name", ROBUST_NAMES)
    def test_bounded_under_corruption_where_mean_is_dragged(self, name, rng):
        """Two corrupted ranks drag the mean arbitrarily far; the robust
        aggregators stay near the honest center."""
        center = rng.standard_normal(32).astype(np.float32)
        X = center + 0.01 * rng.standard_normal((8, 32)).astype(np.float32)
        # Both Byzantine ranks push the same direction so the mean cannot
        # benefit from cancellation.
        X[1] = 1e4
        X[5] = 1e4
        honest = center
        robust = get_aggregator(name).combine(X)
        mean = X.mean(axis=0)
        assert np.abs(robust - honest).max() < 0.1
        assert np.abs(mean - honest).max() > 100.0

    def test_coordinate_median_is_exact_median(self, rng):
        X = rng.standard_normal((5, 12)).astype(np.float32)
        np.testing.assert_allclose(CoordinateMedianAggregator().combine(X),
                                   np.median(X, axis=0), rtol=1e-6)


class TestGeometricMedian:
    def test_minimizes_distance_sum_vs_mean(self, rng):
        """The Weiszfeld point has no larger a distance-sum objective than
        the mean (it is the minimizer of exactly that objective)."""
        X = rng.standard_normal((7, 10)).astype(np.float64)
        X[0] *= 50.0
        gm = GeometricMedianAggregator().combine(X)

        def objective(y):
            return float(np.linalg.norm(X - y, axis=1).sum())

        assert objective(gm) <= objective(X.mean(axis=0)) + 1e-9

    def test_collinear_points_converge_to_inner_point(self):
        """For 1-D style data the geometric median is the coordinate median."""
        X = np.array([[0.0], [1.0], [10.0]])
        gm = GeometricMedianAggregator().combine(X)
        assert abs(float(gm[0]) - 1.0) < 1e-3

    def test_handles_point_coincident_with_iterate(self):
        """The eps floor keeps Weiszfeld finite when the iterate sits on a
        data point (the mean of symmetric points is itself a point)."""
        X = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 0.0]])
        gm = GeometricMedianAggregator().combine(X)
        assert np.all(np.isfinite(gm))
        np.testing.assert_allclose(gm, [0.0, 0.0], atol=1e-6)

    def test_preserves_dtype(self, rng):
        X = rng.standard_normal((4, 6)).astype(np.float32)
        assert GeometricMedianAggregator().combine(X).dtype == np.float32

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            GeometricMedianAggregator(max_iterations=0)
        with pytest.raises(ValueError):
            GeometricMedianAggregator(tol=0.0)


class TestTrimmedMeanValidation:
    def test_ratio_bounds(self):
        with pytest.raises(ValueError):
            TrimmedMeanAggregator(trim_ratio=0.5)
        with pytest.raises(ValueError):
            TrimmedMeanAggregator(trim_ratio=-0.1)

    def test_trims_expected_extremes(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0], [100.0], [-100.0],
                      [1.5], [2.5]])
        # P=8, trim_ratio=0.25 -> k=2 per side: both outliers plus one honest
        # value per side are dropped.
        result = TrimmedMeanAggregator(trim_ratio=0.25).combine(X)
        ordered = np.sort(X[:, 0])[2:-2]
        assert abs(float(result[0]) - ordered.mean()) < 1e-12

    @pytest.mark.parametrize("ratio,P,expected", [
        (0.3, 10, 3),      # 0.3 * 10 == 2.999…96 in binary: int() said 2
        (0.29, 100, 29),   # 0.29 * 100 == 28.999…96: int() said 28
        (0.35, 20, 7),     # 0.35 * 20 == 6.999…99: int() said 6
        (0.1, 30, 3),
        (0.1, 7, 0),       # genuine sub-integer products still floor down
        (0.25, 8, 2),      # exact products stay exact (no overshoot)
        (0.4999, 10, 4),
        (0.2, 4, 0),       # 0.2 * 4 == 0.8 -> floor 0
    ])
    def test_trim_count_is_the_decimal_floor(self, ratio, P, expected):
        """k must be floor(trim_ratio · P) of the *decimal* ratio; binary
        float truncation used to land one below at awkward (ratio, P)."""
        aggregator = TrimmedMeanAggregator(trim_ratio=ratio)
        assert aggregator.trim_count(P) == expected
        # The combine agrees with an explicitly sorted-and-sliced reference.
        X = np.arange(P, dtype=np.float64)[:, None] * np.ones((1, 3))
        result = aggregator.combine(X)
        reference = (np.arange(P, dtype=np.float64)[expected:P - expected].mean()
                     if expected else np.arange(P, dtype=np.float64).mean())
        np.testing.assert_allclose(result, np.full(3, reference))

    def test_trim_count_near_half_never_empties_the_stack(self):
        """Ratios epsilon-close to 0.5 clamp so 2k < P always holds."""
        aggregator = TrimmedMeanAggregator(trim_ratio=0.49999999999999)
        for P in (2, 3, 4, 5, 8, 10, 11):
            k = aggregator.trim_count(P)
            assert 2 * k < P
            result = aggregator.combine(np.ones((P, 2)))
            np.testing.assert_array_equal(result, np.ones(2))


class TestCombineTimeModel:
    """Pin the priced combine-time formulas (satellite: O(P·m) gather +
    Weiszfeld iteration cost in the α–β/compute time model)."""

    RATE = 2.5e9

    def test_shared_rate_constant(self):
        for name in ALL_NAMES:
            agg = get_aggregator(name)
            assert agg.AGGREGATION_ELEMENTS_PER_SECOND == self.RATE

    @pytest.mark.parametrize("P,m", [(2, 1000), (8, 4522), (16, 1.0e6)])
    def test_mean_is_one_pass(self, P, m):
        assert get_aggregator("mean").combine_time_s(P, m) == \
            pytest.approx(P * m / self.RATE)

    @pytest.mark.parametrize("name", ["trimmed_mean", "coordinate_median"])
    @pytest.mark.parametrize("P,m", [(2, 1000), (8, 4522)])
    def test_sorting_aggregators_add_log_factor(self, name, P, m):
        expected = P * m * (1.0 + np.log2(max(P, 2))) / self.RATE
        assert get_aggregator(name).combine_time_s(P, m) == \
            pytest.approx(expected)

    def test_geometric_median_charges_weiszfeld_iterations(self):
        agg = get_aggregator("geometric_median")
        # Explicit iteration count: gather P·m plus 2·P·m per iteration.
        assert agg.combine_time_s(4, 1000, iterations=3) == \
            pytest.approx(4 * 1000 * (1.0 + 2.0 * 3) / self.RATE)
        # Before any combine ran, the bound defaults to max_iterations.
        assert agg.combine_time_s(4, 1000) == \
            pytest.approx(4 * 1000 * (1.0 + 2.0 * agg.max_iterations) / self.RATE)

    def test_geometric_median_defaults_to_measured_iterations(self):
        agg = get_aggregator("geometric_median")
        rng = np.random.default_rng(0)
        agg.combine(rng.normal(size=(4, 64)))
        executed = agg.last_iterations
        assert executed is not None and 1 <= executed <= agg.max_iterations
        assert agg.combine_time_s(4, 64) == \
            pytest.approx(4 * 64 * (1.0 + 2.0 * executed) / self.RATE)

    def test_exchange_report_charges_the_formula(self):
        """An allreduce exchange with a robust aggregator charges exactly
        combine_time_s for the off-wire (P, n) combine."""
        from repro.comm.inprocess import InProcessWorld
        from repro.compress.registry import COMPRESSORS
        from repro.sync import SyncSpec

        P = 4
        world = InProcessWorld(P)
        compressors = [COMPRESSORS.create("dense") for _ in range(P)]
        strategy = SyncSpec(strategy="allreduce",
                            aggregator="trimmed_mean").build(world, compressors)
        n = 256
        G = np.random.default_rng(1).normal(size=(P, n)).astype(np.float32)
        _, report = strategy.exchange_batched(G)
        assert report.aggregation_time_s == pytest.approx(
            strategy.aggregator.combine_time_s(P, n))

    def test_mean_on_allreduce_charges_no_offwire_combine(self):
        from repro.comm.inprocess import InProcessWorld
        from repro.compress.registry import COMPRESSORS
        from repro.sync import SyncSpec

        P = 4
        world = InProcessWorld(P)
        compressors = [COMPRESSORS.create("dense") for _ in range(P)]
        strategy = SyncSpec(strategy="allreduce").build(world, compressors)
        G = np.ones((P, 64), dtype=np.float32)
        _, report = strategy.exchange_batched(G)
        assert report.aggregation_time_s == 0.0
