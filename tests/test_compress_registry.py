"""Tests for the compressor registry and the Table 2 analytic quantities."""

import numpy as np
import pytest

from repro.compress import (
    COMPRESSOR_REGISTRY,
    A2SGDCompressor,
    Compressor,
    get_compressor,
    list_compressors,
)
from repro.compress.registry import PAPER_ALGORITHMS


class TestRegistry:
    def test_all_paper_algorithms_registered(self):
        for name in PAPER_ALGORITHMS:
            assert name in COMPRESSOR_REGISTRY

    def test_list_compressors_sorted(self):
        names = list_compressors()
        assert names == sorted(names)
        assert "a2sgd" in names and "dense" in names

    def test_get_compressor_case_and_aliases(self):
        assert isinstance(get_compressor("A2SGD"), A2SGDCompressor)
        assert get_compressor("Top-K").name == "topk"
        assert get_compressor("gaussian_k").name == "gaussiank"
        assert get_compressor("TopK").name == "topk"

    def test_get_compressor_forwards_kwargs(self):
        compressor = get_compressor("topk", ratio=0.05)
        assert compressor.ratio == pytest.approx(0.05)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_compressor("zip")

    def test_each_instance_is_fresh(self):
        a = get_compressor("a2sgd")
        b = get_compressor("a2sgd")
        assert a is not b

    def test_base_class_is_abstract(self, gradient_vector):
        base = Compressor()
        with pytest.raises(NotImplementedError):
            base.compress(gradient_vector)
        with pytest.raises(NotImplementedError):
            base.wire_bits(10)
        with pytest.raises(NotImplementedError):
            base.computation_complexity(10)


class TestTable2Quantities:
    """Column 2 and 3 of Table 2 as analytic statements about the compressors."""

    N = 66_034_000  # LSTM-PTB parameter count from Table 1

    def test_communication_bits_match_table2(self):
        assert get_compressor("dense").wire_bits(self.N) == 32 * self.N
        assert get_compressor("qsgd").wire_bits(self.N) == pytest.approx(2.8 * self.N + 32)
        k = int(round(0.001 * self.N))
        assert get_compressor("topk").wire_bits(self.N) == 32 * k
        assert get_compressor("gaussiank").wire_bits(self.N) == 32 * k
        assert get_compressor("a2sgd").wire_bits(self.N) == 64

    def test_a2sgd_is_the_only_constant_traffic_algorithm(self):
        small, large = 10_000, 100_000_000
        for name in PAPER_ALGORITHMS:
            compressor = get_compressor(name)
            ratio = compressor.wire_bits(large) / compressor.wire_bits(small)
            if name == "a2sgd":
                assert ratio == pytest.approx(1.0)
            else:
                assert ratio > 100

    def test_traffic_ordering_matches_paper(self):
        bits = {name: get_compressor(name).wire_bits(self.N) for name in PAPER_ALGORITHMS}
        assert bits["a2sgd"] < bits["topk"] == bits["gaussiank"] < bits["qsgd"] < bits["dense"]

    def test_computation_complexity_strings(self):
        assert get_compressor("dense").computation_complexity(self.N) == "O(1)"
        assert get_compressor("a2sgd").computation_complexity(self.N) == "O(n)"
        assert get_compressor("gaussiank").computation_complexity(self.N) == "O(n)"
        assert get_compressor("topk").computation_complexity(self.N) == "O(n + k log n)"
        assert get_compressor("qsgd").computation_complexity(self.N) == "O(n^2)"

    def test_compression_ratio_headline_number(self):
        # For LSTM-PTB, A2SGD reduces traffic by a factor of ~33 million
        # relative to dense SGD (32n bits vs 64 bits).
        dense_bits = get_compressor("dense").wire_bits(self.N)
        a2sgd_bits = get_compressor("a2sgd").wire_bits(self.N)
        assert dense_bits / a2sgd_bits == pytest.approx(32 * self.N / 64)


class TestCompressorContracts:
    """Every registered compressor obeys the shared interface contract."""

    @pytest.mark.parametrize("name", sorted(COMPRESSOR_REGISTRY))
    def test_compress_returns_payload_and_context(self, name, gradient_vector):
        compressor = get_compressor(name)
        payload, ctx = compressor.compress(gradient_vector)
        assert isinstance(payload, np.ndarray)
        assert payload.ndim == 1
        assert isinstance(ctx, dict)

    @pytest.mark.parametrize("name", sorted(COMPRESSOR_REGISTRY))
    def test_roundtrip_produces_gradient_of_same_shape(self, name, gradient_vector):
        compressor = get_compressor(name)
        payload, ctx = compressor.compress(gradient_vector)
        if compressor.exchange.value == "allreduce":
            rebuilt = compressor.decompress(payload, ctx)
        else:
            rebuilt = compressor.decompress_gathered([payload], ctx)
        assert rebuilt.shape == gradient_vector.shape
        assert np.isfinite(rebuilt).all()

    @pytest.mark.parametrize("name", sorted(COMPRESSOR_REGISTRY))
    def test_wire_bits_positive_and_monotone(self, name):
        compressor = get_compressor(name)
        small = compressor.wire_bits(1_000)
        large = compressor.wire_bits(1_000_000)
        assert small > 0
        assert large >= small

    @pytest.mark.parametrize("name", sorted(COMPRESSOR_REGISTRY))
    def test_reset_state_clears_statistics(self, name, gradient_vector):
        compressor = get_compressor(name)
        compressor.compress(gradient_vector)
        compressor.reset_state()
        assert compressor.stats.iterations == 0

    @pytest.mark.parametrize("name", sorted(COMPRESSOR_REGISTRY))
    def test_stats_track_relative_error(self, name, gradient_vector):
        compressor = get_compressor(name)
        compressor.compress(gradient_vector)
        assert compressor.stats.iterations == 1
        assert compressor.stats.last_compression_error >= 0.0
