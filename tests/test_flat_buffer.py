"""Tests for the zero-copy flat gradient/parameter buffers.

The aliasing invariants are the contract the whole fused pipeline rests on:
``param.data`` / ``param.grad`` must be live views of the flat storage in both
directions, autograd must accumulate into the flat matrix, and checkpointing
through the flat path must round-trip bit-exactly.
"""

import numpy as np
import pytest

from repro import nn
from repro.core import DistributedTrainer, TrainerConfig, load_checkpoint, save_checkpoint
from repro.core.flat_buffer import FlatLayout, ModelFlatBuffers, WorldFlatBuffers
from repro.core.flatten import (
    flatten_gradients,
    flatten_parameters,
    unflatten_into_gradients,
    unflatten_into_parameters,
)
from repro.tensor import Tensor


def small_model():
    return nn.Sequential(nn.Linear(3, 4), nn.ReLU(), nn.Linear(4, 2))


class TestFlatLayout:
    def test_layout_matches_model(self):
        model = small_model()
        layout = FlatLayout.from_model(model)
        assert layout.total_size == model.num_parameters()
        assert layout.matches(model)
        assert len(layout) == len(model.parameters())

    def test_segments_cover_everything_in_order(self):
        model = small_model()
        layout = FlatLayout.from_model(model)
        expected_offset = 0
        for (offset, size, shape), param in zip(layout.segments(), model.parameters()):
            assert offset == expected_offset
            assert shape == param.data.shape
            expected_offset += size
        assert expected_offset == layout.total_size


class TestAliasing:
    def test_adoption_preserves_parameter_values(self):
        model = small_model()
        before = flatten_parameters(model)
        ModelFlatBuffers(model)
        np.testing.assert_array_equal(before, flatten_parameters(model))

    def test_param_write_visible_in_flat_view_and_back(self):
        model = small_model()
        buffers = ModelFlatBuffers(model)
        first = model.parameters()[0]
        first.data[...] = 3.5
        assert np.all(buffers.params[:first.size] == 3.5)
        buffers.params[:first.size] = -1.0
        assert np.all(first.data == -1.0)

    def test_grad_write_visible_both_directions(self):
        model = small_model()
        buffers = ModelFlatBuffers(model)
        vector = np.arange(buffers.grads.size, dtype=np.float32)
        buffers.set_grad_vector(vector)
        first = model.parameters()[0]
        np.testing.assert_array_equal(first.grad.reshape(-1), vector[:first.size])
        first.grad[...] = 9.0
        assert np.all(buffers.grads[:first.size] == 9.0)

    def test_backward_accumulates_into_flat_storage(self, rng):
        model = small_model()
        buffers = ModelFlatBuffers(model)
        buffers.zero_grads()
        out = model(Tensor(rng.standard_normal((5, 3)).astype(np.float32)))
        out.sum().backward()
        assert np.abs(buffers.grads).sum() > 0
        np.testing.assert_array_equal(flatten_gradients(model), buffers.grads)
        # zero-copy read really is the storage itself
        assert flatten_gradients(model, copy=False) is buffers.grads

    def test_flatten_unflatten_fast_paths(self, rng):
        model = small_model()
        buffers = ModelFlatBuffers(model)
        vector = rng.standard_normal(buffers.params.size).astype(np.float32)
        unflatten_into_parameters(model, vector)
        np.testing.assert_array_equal(flatten_parameters(model), vector)
        unflatten_into_gradients(model, vector)
        np.testing.assert_array_equal(flatten_gradients(model), vector)
        with pytest.raises(ValueError):
            unflatten_into_gradients(model, vector[:-1])
        with pytest.raises(ValueError):
            unflatten_into_parameters(model, np.zeros(vector.size + 1, dtype=np.float32))

    def test_zero_grads_clears_storage_and_grad_refs(self, rng):
        model = small_model()
        buffers = ModelFlatBuffers(model)
        out = model(Tensor(rng.standard_normal((2, 3)).astype(np.float32)))
        out.sum().backward()
        buffers.zero_grads()
        assert np.all(buffers.grads == 0)
        assert all(p.grad is None for p in model.parameters())


class TestWorldFlatBuffers:
    def test_rows_alias_replicas(self, rng):
        replicas = [small_model() for _ in range(3)]
        world = WorldFlatBuffers(replicas)
        for p, replica in enumerate(replicas):
            np.testing.assert_array_equal(world.param_matrix[p], flatten_parameters(replica))
        replicas[1].parameters()[0].data[...] = 4.0
        assert np.all(world.param_matrix[1][:12] == 4.0)

    def test_grad_matrix_is_the_backward_target(self, rng):
        replicas = [small_model() for _ in range(2)]
        world = WorldFlatBuffers(replicas)
        world.zero_grads()
        x = Tensor(rng.standard_normal((4, 3)).astype(np.float32))
        for replica in replicas:
            replica(x).sum().backward()
        G = world.grad_matrix_view()
        for p, replica in enumerate(replicas):
            np.testing.assert_array_equal(G[p], flatten_gradients(replica))

    def test_stacked_views_are_views(self):
        replicas = [small_model() for _ in range(4)]
        world = WorldFlatBuffers(replicas)
        stacked = world.stacked_param_view(0)
        assert stacked.shape == (4,) + replicas[0].parameters()[0].data.shape
        assert stacked.base is not None
        stacked[2] = 7.0
        assert np.all(world.param_matrix[2][:stacked[2].size] == 7.0)


class TestCheckpointThroughFlatBuffers:
    def make_trainer(self, **overrides):
        base = dict(model="fnn3", preset="tiny", algorithm="a2sgd", world_size=2,
                    epochs=1, batch_size=16, max_iterations_per_epoch=4,
                    num_train=128, num_test=32, seed=0)
        base.update(overrides)
        return DistributedTrainer(TrainerConfig(**base))

    def test_fused_checkpoint_roundtrip_bitexact(self, tmp_path):
        trainer = self.make_trainer()
        trainer.train()
        path = save_checkpoint(trainer, tmp_path / "fused.npz")

        fresh = self.make_trainer()
        load_checkpoint(fresh, path)
        for original, restored in zip(trainer.replicas, fresh.replicas):
            np.testing.assert_array_equal(flatten_parameters(original),
                                          flatten_parameters(restored))
        # momentum state restored into the flat velocity rows
        for a, b in zip(trainer.optimizers, fresh.optimizers):
            sa, sb = a.state_dict(), b.state_dict()
            assert sa["velocity"].keys() == sb["velocity"].keys()
            for key in sa["velocity"]:
                np.testing.assert_array_equal(sa["velocity"][key], sb["velocity"][key])

    def test_checkpoint_crosses_pipeline_modes(self, tmp_path):
        """A checkpoint saved by the fused trainer restores into the legacy
        trainer (and vice versa) — the on-disk format is pipeline-agnostic."""
        fused = self.make_trainer(fused_pipeline=True)
        fused.train()
        path = save_checkpoint(fused, tmp_path / "cross.npz")

        legacy = self.make_trainer(fused_pipeline=False)
        load_checkpoint(legacy, path)
        for original, restored in zip(fused.replicas, legacy.replicas):
            np.testing.assert_array_equal(flatten_parameters(original),
                                          flatten_parameters(restored))
