"""Tests for the declarative ExperimentSpec and its CLI/runner integration."""

import dataclasses
import json

import pytest

from repro.comm.network_model import NetworkModel, ethernet_10gbps
from repro.core import ExperimentConfig, run_algorithm_sweep, run_experiment
from repro.core.callbacks import Callback
from repro.core.spec import ExperimentSpec, SpecError
from repro.core.trainer import TrainerConfig


def quick_spec(**overrides) -> ExperimentSpec:
    base = dict(model="fnn3", preset="tiny", algorithm="a2sgd", world_size=2, epochs=2,
                max_iterations_per_epoch=4, batch_size=16, num_train=128, num_test=32, seed=0)
    base.update(overrides)
    return ExperimentSpec(**base)


class TestDerivation:
    def test_trainer_config_fields_all_derived(self):
        """Every TrainerConfig field exists on the spec — no hand-mirror."""
        spec_fields = {f.name for f in dataclasses.fields(ExperimentSpec)}
        trainer_fields = {f.name for f in dataclasses.fields(TrainerConfig)}
        assert trainer_fields <= spec_fields

    def test_to_trainer_config_copies_values(self):
        spec = quick_spec(algorithm="topk", compressor_kwargs={"ratio": 0.01},
                          eval_every=2, fused_pipeline=False)
        config = spec.to_trainer_config()
        assert config.algorithm == "topk"
        assert config.compressor_kwargs == {"ratio": 0.01}
        assert config.eval_every == 2
        assert config.fused_pipeline is False

    def test_trainer_config_does_not_alias_spec_mutables(self):
        spec = quick_spec(compressor_kwargs={"ratio": 0.01})
        config = spec.to_trainer_config()
        config.compressor_kwargs["ratio"] = 0.5
        assert spec.compressor_kwargs["ratio"] == 0.01

    def test_network_resolution_by_name(self):
        config = quick_spec(network="ethernet_10gbps").to_trainer_config()
        assert isinstance(config.network, NetworkModel)
        assert config.network == ethernet_10gbps()

    def test_network_resolution_from_dict(self):
        config = quick_spec(network={"latency_s": 1e-6, "bandwidth_Bps": 1e9,
                                     "name": "lab"}).to_trainer_config()
        assert config.network.name == "lab"


class TestRoundTrip:
    def test_dict_round_trip_preserves_trainer_config(self):
        spec = quick_spec(algorithm="topk", compressor_kwargs={"ratio": 0.02},
                          network="ethernet_10gbps", eval_every=2,
                          callbacks=["progress", {"name": "early_stopping", "patience": 2}])
        rebuilt = ExperimentSpec.from_dict(spec.to_dict())
        assert rebuilt.to_trainer_config() == spec.to_trainer_config()
        assert rebuilt.callbacks == spec.callbacks

    def test_file_round_trip(self, tmp_path):
        spec = quick_spec(network={"latency_s": 2e-6, "bandwidth_Bps": 5e9, "name": "x"})
        path = spec.to_file(tmp_path / "spec.json")
        rebuilt = ExperimentSpec.from_file(path)
        assert rebuilt.to_trainer_config() == spec.to_trainer_config()
        # The file itself is plain JSON.
        assert json.loads(path.read_text())["model"] == "fnn3"

    def test_dict_is_json_ready(self):
        payload = quick_spec().to_dict()
        json.dumps(payload)  # must not raise

    def test_callback_instances_fail_serialization_with_clear_error(self):
        spec = quick_spec(callbacks=[Callback()])
        with pytest.raises(SpecError, match="not serializable"):
            spec.to_dict()


class TestFromDictErrors:
    def test_unknown_key_suggests_fix(self):
        with pytest.raises(SpecError, match="did you mean 'algorithm'"):
            ExperimentSpec.from_dict({"algorithmm": "a2sgd"})

    def test_multiple_problems_reported_together(self):
        with pytest.raises(SpecError) as excinfo:
            ExperimentSpec.from_dict({"foo": 1, "bar": 2})
        assert len(excinfo.value.problems) == 2

    def test_non_dict_rejected(self):
        with pytest.raises(SpecError, match="expected a JSON object"):
            ExperimentSpec.from_dict([1, 2, 3])

    def test_missing_file(self, tmp_path):
        with pytest.raises(SpecError, match="does not exist"):
            ExperimentSpec.from_file(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SpecError, match="not valid JSON"):
            ExperimentSpec.from_file(path)


class TestValidate:
    def test_valid_spec_returns_self(self):
        spec = quick_spec()
        assert spec.validate() is spec

    def test_collects_all_problems(self):
        spec = quick_spec(model="alexnet", algorithm="zip", world_size=0,
                          eval_every=0, network="wifi",
                          callbacks=["not_a_callback"])
        with pytest.raises(SpecError) as excinfo:
            spec.validate()
        text = str(excinfo.value)
        assert "alexnet" in text
        assert "unknown compressor 'zip'" in text
        assert "world_size" in text
        assert "eval_every" in text
        assert "unknown network 'wifi'" in text
        assert "unknown callback 'not_a_callback'" in text

    def test_network_dict_missing_keys(self):
        with pytest.raises(SpecError, match="latency_s"):
            quick_spec(network={"name": "x"}).validate()

    def test_network_dict_unexpected_keys(self):
        with pytest.raises(SpecError, match="unexpected keys.*typo_key"):
            quick_spec(network={"latency_s": 1e-5, "bandwidth_Bps": 1e9,
                                "typo_key": 3}).validate()

    def test_bad_compressor_kwargs_type(self):
        with pytest.raises(SpecError, match="compressor_kwargs"):
            quick_spec(compressor_kwargs=[1]).validate()

    def test_model_name_lookup_matches_runtime_normalization(self):
        # get_model_spec accepts "lstm-ptb"; validate must not reject it.
        assert quick_spec(model="lstm-ptb").validate() is not None

    def test_unconstructible_callback_caught_at_validation(self):
        # "checkpoint" needs a path; that must fail here, not mid-run.
        with pytest.raises(SpecError, match="cannot be constructed"):
            quick_spec(callbacks=["checkpoint"]).validate()
        with pytest.raises(SpecError, match="cannot be constructed"):
            quick_spec(callbacks=[{"name": "early_stopping",
                                   "patience": 0}]).validate()


class TestReplace:
    def test_replace_overrides_and_preserves(self):
        spec = quick_spec(algorithm="dense")
        other = spec.replace(algorithm="topk", world_size=4)
        assert other.algorithm == "topk" and other.world_size == 4
        assert spec.algorithm == "dense" and spec.world_size == 2

    def test_replace_deep_copies_mutables(self):
        spec = quick_spec(compressor_kwargs={"ratio": 0.05})
        other = spec.replace(algorithm="topk")
        other.compressor_kwargs["ratio"] = 0.5
        assert spec.compressor_kwargs["ratio"] == 0.05

    def test_replace_unknown_field(self):
        with pytest.raises(SpecError, match="did you mean"):
            quick_spec().replace(algorithmm="topk")

    def test_replace_preserves_subclass(self):
        config = ExperimentConfig(model="fnn3", world_size=2)
        assert isinstance(config.replace(world_size=4), ExperimentConfig)


class TestSweepRegression:
    """run_algorithm_sweep used to shallow-copy base.__dict__, sharing the
    compressor_kwargs dict and network object across every sweep cell."""

    def test_cells_do_not_share_compressor_kwargs(self):
        base = quick_spec(epochs=1, max_iterations_per_epoch=2,
                          compressor_kwargs={"ratio": 0.05})
        results = run_algorithm_sweep(base, ["topk", "randk"])
        kwargs_objects = [results[name].config.compressor_kwargs for name in ("topk", "randk")]
        assert kwargs_objects[0] is not kwargs_objects[1]
        assert kwargs_objects[0] is not base.compressor_kwargs
        kwargs_objects[0]["ratio"] = 0.9
        assert kwargs_objects[1]["ratio"] == 0.05
        assert base.compressor_kwargs["ratio"] == 0.05

    def test_cells_do_not_share_network(self):
        base = quick_spec(epochs=1, max_iterations_per_epoch=2,
                          network={"latency_s": 1e-6, "bandwidth_Bps": 1e9, "name": "n"})
        results = run_algorithm_sweep(base, ["dense", "a2sgd"])
        networks = [results[name].config.network for name in ("dense", "a2sgd")]
        assert networks[0] is not networks[1]

    def test_mutating_one_cell_config_leaves_base_untouched(self):
        base = quick_spec(epochs=1, max_iterations_per_epoch=2)
        results = run_algorithm_sweep(base, ["dense"])
        results["dense"].config.compressor_kwargs["injected"] = True
        assert "injected" not in base.compressor_kwargs


class TestRunExperimentWithSpec:
    def test_spec_callbacks_are_invoked(self):
        seen = []

        class Probe(Callback):
            def on_iteration_end(self, state):
                seen.append(state.global_iteration)

        spec = quick_spec(epochs=2, max_iterations_per_epoch=3)
        run_experiment(spec, callbacks=[Probe()])
        assert seen == list(range(1, 7))

    def test_spec_named_callbacks_resolve(self, tmp_path):
        path = tmp_path / "ck.npz"
        spec = quick_spec(epochs=1, max_iterations_per_epoch=2,
                          callbacks=[{"name": "checkpoint", "path": str(path)}])
        run_experiment(spec)
        assert path.exists()

    def test_experiment_config_shim_still_works(self):
        config = ExperimentConfig(model="fnn3", preset="tiny", algorithm="a2sgd",
                                  world_size=2, epochs=1, max_iterations_per_epoch=2,
                                  batch_size=16, num_train=128, num_test=32, seed=0)
        assert isinstance(config, ExperimentSpec)
        assert config.trainer_config() == config.to_trainer_config()
        result = run_experiment(config)
        assert len(result.metrics.epochs) == 1

    def test_spec_equals_flag_equivalent_trainer_config(self):
        """The CLI acceptance path: a spec file and the equivalent kwargs
        produce identical TrainerConfigs (hence seed-identical runs)."""
        spec = ExperimentSpec.from_dict({"model": "fnn3", "algorithm": "a2sgd",
                                         "world_size": 2, "epochs": 2,
                                         "max_iterations_per_epoch": 6,
                                         "batch_size": 16})
        kwargs = ExperimentSpec(model="fnn3", algorithm="a2sgd", world_size=2,
                                epochs=2, max_iterations_per_epoch=6, batch_size=16)
        assert spec.to_trainer_config() == kwargs.to_trainer_config()


class TestSyncSection:
    """The nested ``sync`` section: resolution, validation, JSON round-trip
    and replace() deep-copy semantics."""

    def test_default_sync_is_the_paper_setup(self):
        from repro.sync import SyncSpec

        spec = quick_spec()
        resolved = spec.resolved_sync()
        assert resolved == SyncSpec()
        assert resolved.strategy == "allreduce" and resolved.aggregator == "mean"

    def test_dict_form_resolves_and_derives(self):
        from repro.sync import SyncSpec

        spec = quick_spec(sync={"strategy": "local_sgd", "period": 4})
        config = spec.to_trainer_config()
        assert isinstance(config.sync, SyncSpec)
        assert config.sync.period == 4

    def test_trainer_config_sync_is_deep_copied(self):
        from repro.sync import SyncSpec

        sync = SyncSpec(strategy="gossip", corrupt_ranks=[1])
        spec = quick_spec(sync=sync)
        config = spec.to_trainer_config()
        assert config.sync == sync and config.sync is not sync
        config.sync.corrupt_ranks.append(0)
        assert sync.corrupt_ranks == [1]

    def test_json_round_trip_preserves_sync(self):
        spec = quick_spec(sync={"strategy": "gossip", "topology": "star",
                                "aggregator": "trimmed_mean",
                                "aggregator_kwargs": {"trim_ratio": 0.25}})
        restored = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored.to_trainer_config() == spec.to_trainer_config()

    def test_replace_deep_copies_nested_sync(self):
        """Acceptance: sibling specs made by replace() never share the nested
        sync section's mutable state."""
        spec = quick_spec(sync={"strategy": "local_sgd", "period": 2,
                                "corrupt_ranks": [0]})
        sibling = spec.replace(world_size=4)
        sibling.sync["corrupt_ranks"].append(3)
        sibling.sync["period"] = 8
        assert spec.sync["corrupt_ranks"] == [0]
        assert spec.sync["period"] == 2

    def test_replace_override_of_sync_section(self):
        spec = quick_spec()
        other = spec.replace(sync={"strategy": "gossip", "topology": "ring"})
        assert spec.sync is None
        assert other.resolved_sync().strategy == "gossip"

    def test_validate_accepts_all_registered_components(self):
        quick_spec(sync={"strategy": "gossip", "topology": "fully_connected",
                         "aggregator": "geometric_median"}).validate()

    def test_validate_rejects_unknown_strategy_with_suggestion(self):
        with pytest.raises(SpecError, match="sync strategy"):
            quick_spec(sync={"strategy": "gosip"}).validate()

    def test_validate_rejects_unknown_sync_field_with_suggestion(self):
        with pytest.raises(SpecError, match="did you mean 'period'"):
            quick_spec(sync={"perod": 3}).validate()

    def test_validate_rejects_bad_period_and_out_of_range_ranks(self):
        with pytest.raises(SpecError) as excinfo:
            quick_spec(sync={"period": 0, "corrupt_ranks": [7]}).validate()
        message = str(excinfo.value)
        assert "period" in message and "out of range" in message

    def test_validate_rejects_robust_aggregator_with_allgather_compressor(self):
        with pytest.raises(SpecError, match="allreduce-kind compressors only"):
            quick_spec(algorithm="topk",
                       sync={"aggregator": "coordinate_median"}).validate()

    def test_validate_allows_robust_aggregator_for_parameter_strategies(self):
        quick_spec(algorithm="topk",
                   sync={"strategy": "local_sgd", "period": 4,
                         "aggregator": "coordinate_median"}).validate()

    def test_validate_rejects_unconstructible_aggregator_kwargs(self):
        with pytest.raises(SpecError, match="cannot be constructed"):
            quick_spec(sync={"aggregator": "trimmed_mean",
                             "aggregator_kwargs": {"trim_ratio": 0.9}}).validate()

    def test_validate_rejects_non_dict_sync(self):
        with pytest.raises(SpecError, match="sync must be"):
            quick_spec(sync="gossip").validate()

    def test_sync_spec_run_end_to_end(self):
        spec = quick_spec(epochs=1, max_iterations_per_epoch=2,
                          sync={"strategy": "gossip", "topology": "ring"},
                          algorithm="dense")
        result = run_experiment(spec)
        assert len(result.metrics.epochs) == 1

    def test_validate_flags_period_on_non_local_sgd_strategy(self):
        with pytest.raises(SpecError, match="only used by period-based"):
            quick_spec(sync={"period": 4}).validate()
        with pytest.raises(SpecError, match="only used by period-based"):
            quick_spec(sync={"strategy": "gossip", "period": 4}).validate()

    def test_validate_flags_topology_on_non_gossip_strategy(self):
        with pytest.raises(SpecError, match="only used by graph-based"):
            quick_spec(sync={"topology": "star"}).validate()

    def test_validate_accepts_strategy_specific_fields_on_their_strategy(self):
        quick_spec(sync={"strategy": "local_sgd", "period": 4}).validate()
        quick_spec(sync={"strategy": "gossip", "topology": "star"},
                   algorithm="dense").validate()
