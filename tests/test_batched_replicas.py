"""The batched replica executors must match per-replica autograd gradients.

The hand-derived MLP executor is held to float32-round-off tolerances (its
backward re-derives the math); the generic stacked-graph executors for
LSTM/conv models are held to **bit-identical** gradients — they run the same
operation sequence as the seed loop, just with a leading replica axis.
"""

import numpy as np
import pytest

from repro import nn
from repro.core.batched_replicas import (
    BatchedAutogradExecutor,
    BatchedLanguageModelExecutor,
    BatchedReplicaExecutor,
    build_replica_executor,
)
from repro.core.flat_buffer import WorldFlatBuffers
from repro.core.flatten import flatten_gradients
from repro.models.fnn import FNN3
from repro.models.lstm_lm import LSTMLanguageModel
from repro.models.resnet import ResNet
from repro.models.vgg import VGG16
from repro.tensor import Tensor, functional as F


def build_replicas(P, seed_offset=0):
    return [FNN3(input_dim=12, hidden_dims=(9, 9, 9), num_classes=4, seed=3)
            for _ in range(P)]


def autograd_reference(replicas, inputs, targets):
    """Per-replica autograd gradients and losses (the seed semantics)."""
    gradients, losses = [], []
    for replica, x, y in zip(replicas, inputs, targets):
        replica.zero_grad()
        logits = replica(Tensor(x))
        loss = F.cross_entropy(logits, y)
        loss.backward()
        gradients.append(np.concatenate([np.asarray(p.grad, dtype=np.float32).reshape(-1)
                                         for p in replica.parameters()]))
        losses.append(loss.item())
    return np.stack(gradients), losses


class TestSupports:
    def test_supports_fnn(self):
        assert BatchedReplicaExecutor.supports(FNN3(input_dim=8, hidden_dims=(4, 4, 4),
                                                    num_classes=3))

    def test_supports_bare_sequential_mlp(self):
        assert BatchedReplicaExecutor.supports(
            nn.Sequential(nn.Linear(5, 4), nn.ReLU(), nn.Linear(4, 2)))

    def test_rejects_non_mlp(self):
        assert not BatchedReplicaExecutor.supports(
            nn.Sequential(nn.Linear(5, 4), nn.Dropout(0.5), nn.Linear(4, 2)))

    def test_rejects_models_without_net(self):
        class Weird(nn.Module):
            def __init__(self):
                super().__init__()
                self.layer = nn.Linear(3, 3)

        assert not BatchedReplicaExecutor.supports(Weird())


class TestGradientEquivalence:
    @pytest.mark.parametrize("P,batch", [(1, 8), (4, 16)])
    def test_matches_autograd(self, rng, P, batch):
        replicas = build_replicas(P)
        # Diverge the replicas so the batched path really handles P distinct
        # weight sets (as A2SGD training does).
        for i, replica in enumerate(replicas):
            for param in replica.parameters():
                param.data += (0.01 * (i + 1)) * rng.standard_normal(param.data.shape
                                                                     ).astype(np.float32)

        inputs = rng.standard_normal((P, batch, 12)).astype(np.float32)
        targets = rng.integers(0, 4, size=(P, batch))
        expected_grads, expected_losses = autograd_reference(replicas, inputs, targets)

        world = WorldFlatBuffers(replicas)
        executor = BatchedReplicaExecutor(replicas, world)
        losses = executor.forward_backward(inputs, targets)

        np.testing.assert_allclose(world.grad_matrix, expected_grads, rtol=1e-5, atol=1e-7)
        np.testing.assert_allclose(losses, expected_losses, rtol=1e-5)

    def test_image_shaped_inputs_are_flattened(self, rng):
        replicas = [FNN3(input_dim=16, hidden_dims=(6, 6, 6), num_classes=3, seed=1)
                    for _ in range(2)]
        world = WorldFlatBuffers(replicas)
        executor = BatchedReplicaExecutor(replicas, world)
        inputs = rng.standard_normal((2, 5, 1, 4, 4)).astype(np.float32)
        targets = rng.integers(0, 3, size=(2, 5))
        losses = executor.forward_backward(inputs, targets)
        assert len(losses) == 2 and all(np.isfinite(l) for l in losses)

    def test_param_grad_views_attached_after_run(self, rng):
        replicas = build_replicas(2)
        world = WorldFlatBuffers(replicas)
        executor = BatchedReplicaExecutor(replicas, world)
        inputs = rng.standard_normal((2, 4, 12)).astype(np.float32)
        targets = rng.integers(0, 4, size=(2, 4))
        executor.forward_backward(inputs, targets)
        for p, replica in enumerate(replicas):
            flat = np.concatenate([np.asarray(q.grad).reshape(-1)
                                   for q in replica.parameters()])
            np.testing.assert_array_equal(flat, world.grad_matrix[p])

    def test_wrong_world_size_raises(self, rng):
        replicas = build_replicas(2)
        world = WorldFlatBuffers(replicas)
        executor = BatchedReplicaExecutor(replicas, world)
        with pytest.raises(ValueError):
            executor.forward_backward(rng.standard_normal((3, 4, 12)).astype(np.float32),
                                      rng.integers(0, 4, size=(3, 4)))


def diverge_replicas(replicas, rng):
    """Give every replica distinct weights (as A2SGD training produces)."""
    for i, replica in enumerate(replicas):
        for param in replica.parameters():
            param.data += (0.01 * (i + 1)) * rng.standard_normal(
                param.data.shape).astype(np.float32)


def tiny_resnet(seed=5):
    return ResNet(blocks_per_stage=1, base_channels=(4, 8, 16), num_classes=10,
                  in_channels=3, seed=seed)


def tiny_lstm(num_layers=2, dropout=0.0, seed=3):
    return LSTMLanguageModel(vocab_size=31, embedding_dim=8, hidden_size=7,
                             num_layers=num_layers, dropout=dropout, seed=seed)


class TestLSTMExecutorParity:
    """Stacked-graph BPTT must be bit-identical to the per-replica loop."""

    @pytest.mark.parametrize("P", [2, 4, 8])
    def test_gradients_bit_identical_across_world_sizes(self, rng, P):
        T, N = 5, 3
        replicas = [tiny_lstm() for _ in range(P)]
        diverge_replicas(replicas, rng)
        tokens = rng.integers(0, 31, size=(P, T, N))
        targets = rng.integers(0, 31, size=(P, T, N))

        expected_grads, expected_losses = [], []
        for p in range(P):
            replica = replicas[p]
            replica.zero_grad()
            logits, _ = replica(tokens[p], None)
            loss = F.cross_entropy(logits, targets[p].reshape(-1))
            loss.backward()
            expected_grads.append(flatten_gradients(replica))
            expected_losses.append(loss.item())

        world = WorldFlatBuffers(replicas)
        executor = build_replica_executor(replicas, world, "language_model")
        assert isinstance(executor, BatchedLanguageModelExecutor)
        losses, _ = executor.forward_backward(tokens, targets, None)

        np.testing.assert_array_equal(world.grad_matrix, np.stack(expected_grads))
        assert losses == expected_losses

    def test_carried_bptt_state_stays_bit_identical(self, rng):
        """Window 2 must reuse window 1's detached state exactly as the loop."""
        P, T, N = 4, 4, 2
        replicas = [tiny_lstm(num_layers=1) for _ in range(P)]
        diverge_replicas(replicas, rng)
        windows = [(rng.integers(0, 31, size=(P, T, N)),
                    rng.integers(0, 31, size=(P, T, N))) for _ in range(2)]

        expected = []
        states = [None] * P
        for tokens, targets in windows:
            grads = []
            for p in range(P):
                replica = replicas[p]
                replica.zero_grad()
                logits, state = replica(tokens[p], states[p])
                loss = F.cross_entropy(logits, targets[p].reshape(-1))
                loss.backward()
                grads.append(flatten_gradients(replica))
                states[p] = replica.detach_state(state)
            expected.append(np.stack(grads))

        world = WorldFlatBuffers(replicas)
        executor = build_replica_executor(replicas, world, "language_model")
        state = None
        for (tokens, targets), exp in zip(windows, expected):
            _, state = executor.forward_backward(tokens, targets, state)
            np.testing.assert_array_equal(world.grad_matrix, exp)

    def test_dropout_model_falls_back_to_loop(self):
        model = tiny_lstm(dropout=0.5)
        assert not BatchedLanguageModelExecutor.supports(model)
        replicas = [tiny_lstm(dropout=0.5) for _ in range(2)]
        world = WorldFlatBuffers(replicas)
        assert build_replica_executor(replicas, world, "language_model") is None


class TestConvExecutorParity:
    """Stacked im2col conv/BN/pool graphs must match the loop bit for bit."""

    @pytest.mark.parametrize("P", [2, 4, 8])
    def test_resnet_gradients_bit_identical_across_world_sizes(self, rng, P):
        batch = 4
        replicas = [tiny_resnet() for _ in range(P)]
        diverge_replicas(replicas, rng)
        inputs = rng.standard_normal((P, batch, 3, 8, 8)).astype(np.float32)
        targets = rng.integers(0, 10, size=(P, batch))

        expected_grads, expected_losses = [], []
        for p in range(P):
            replica = replicas[p]
            replica.zero_grad()
            loss = F.cross_entropy(replica(Tensor(inputs[p])), targets[p])
            loss.backward()
            expected_grads.append(flatten_gradients(replica))
            expected_losses.append(loss.item())
        reference_buffers = [{name: value.copy() for name, value in r.named_buffers()}
                             for r in replicas]
        # The reference pass mutated BN running stats; rebuild pristine
        # replicas with the identical weight divergence (the rng fixture is
        # seeded 1234, so replaying the same draw order reproduces it).
        replicas = [tiny_resnet() for _ in range(P)]
        rng_replay = np.random.default_rng(1234)
        diverge_replicas(replicas, rng_replay)
        inputs_replayed = rng_replay.standard_normal((P, batch, 3, 8, 8)).astype(np.float32)
        np.testing.assert_array_equal(inputs, inputs_replayed)

        world = WorldFlatBuffers(replicas)
        executor = build_replica_executor(replicas, world, "classification")
        assert isinstance(executor, BatchedAutogradExecutor)
        losses = executor.forward_backward(inputs, targets)

        np.testing.assert_array_equal(world.grad_matrix, np.stack(expected_grads))
        assert losses == expected_losses
        # Per-replica BatchNorm running statistics update exactly as the loop's.
        for p, replica in enumerate(replicas):
            for name, buf in replica.named_buffers():
                np.testing.assert_array_equal(buf, reference_buffers[p][name])

    def test_vgg_gradients_bit_identical(self, rng):
        P, batch = 2, 3
        make = lambda: VGG16(num_classes=10, in_channels=3, width_multiplier=0.0625,
                             image_size=32, seed=5)
        noise = [[(0.01 * (i + 1)) * rng.standard_normal(p.data.shape).astype(np.float32)
                  for p in r.parameters()] for i, r in enumerate([make() for _ in range(P)])]
        inputs = rng.standard_normal((P, batch, 3, 32, 32)).astype(np.float32)
        targets = rng.integers(0, 10, size=(P, batch))

        def build():
            replicas = [make() for _ in range(P)]
            for replica, deltas in zip(replicas, noise):
                for param, delta in zip(replica.parameters(), deltas):
                    param.data += delta
            return replicas

        reference = build()
        expected = []
        for p in range(P):
            replica = reference[p]
            replica.zero_grad()
            loss = F.cross_entropy(replica(Tensor(inputs[p])), targets[p])
            loss.backward()
            expected.append(flatten_gradients(replica))

        replicas = build()
        world = WorldFlatBuffers(replicas)
        executor = build_replica_executor(replicas, world, "classification")
        assert isinstance(executor, BatchedAutogradExecutor)
        executor.forward_backward(inputs, targets)
        np.testing.assert_array_equal(world.grad_matrix, np.stack(expected))

    def test_executor_factory_prefers_mlp_fast_path(self):
        replicas = [FNN3(input_dim=12, hidden_dims=(9, 9, 9), num_classes=4)
                    for _ in range(2)]
        world = WorldFlatBuffers(replicas)
        executor = build_replica_executor(replicas, world, "classification")
        assert isinstance(executor, BatchedReplicaExecutor)

    def test_unsupported_layer_returns_none(self):
        replicas = [nn.Sequential(nn.Linear(5, 4), nn.Dropout(0.5), nn.Linear(4, 2))
                    for _ in range(2)]
        world = WorldFlatBuffers(replicas)
        assert build_replica_executor(replicas, world, "classification") is None

    def test_param_grad_views_attached_after_batched_run(self, rng):
        P = 2
        replicas = [tiny_resnet() for _ in range(P)]
        world = WorldFlatBuffers(replicas)
        executor = build_replica_executor(replicas, world, "classification")
        inputs = rng.standard_normal((P, 3, 3, 8, 8)).astype(np.float32)
        executor.forward_backward(inputs, rng.integers(0, 10, size=(P, 3)))
        for p, replica in enumerate(replicas):
            flat = np.concatenate([np.asarray(q.grad).reshape(-1)
                                   for q in replica.parameters()])
            np.testing.assert_array_equal(flat, world.grad_matrix[p])


class TestFusedTrainerEquivalence:
    def test_fused_and_legacy_trainers_converge_identically(self):
        """End-to-end: the fused pipeline must track the seed path to float32
        round-off over a full multi-epoch run (same data, same seeds)."""
        from repro.core import DistributedTrainer, TrainerConfig
        from repro.core.flatten import flatten_parameters

        def run(fused):
            config = TrainerConfig(model="fnn3", preset="tiny", algorithm="a2sgd",
                                   world_size=4, epochs=2, batch_size=16,
                                   max_iterations_per_epoch=6, num_train=256,
                                   num_test=64, seed=0, fused_pipeline=fused)
            trainer = DistributedTrainer(config)
            metrics = trainer.train()
            return np.stack([flatten_parameters(m) for m in trainer.replicas]), metrics

        fused_params, fused_metrics = run(True)
        legacy_params, legacy_metrics = run(False)
        np.testing.assert_allclose(fused_params, legacy_params, atol=1e-5)
        np.testing.assert_allclose(fused_metrics.train_loss, legacy_metrics.train_loss,
                                   rtol=1e-4)

    @pytest.mark.parametrize("model,num_train", [("lstm_ptb", 8000), ("resnet20", 256)])
    def test_fused_lstm_and_resnet_training_is_bit_identical(self, model, num_train):
        """End-to-end: with the stacked-graph executors the fused pipeline is
        *bit-identical* to the seed loop over a full multi-epoch run —
        gradients, compression, exchange and (SGD) optimizer included."""
        from repro.core import DistributedTrainer, TrainerConfig
        from repro.core.flatten import flatten_parameters

        def run(fused):
            config = TrainerConfig(model=model, preset="tiny", algorithm="a2sgd",
                                   world_size=4, epochs=2, max_iterations_per_epoch=3,
                                   num_train=num_train, num_test=64, seed=0,
                                   fused_pipeline=fused)
            trainer = DistributedTrainer(config)
            metrics = trainer.train()
            return np.stack([flatten_parameters(m) for m in trainer.replicas]), metrics

        fused_params, fused_metrics = run(True)
        legacy_params, legacy_metrics = run(False)
        np.testing.assert_array_equal(fused_params, legacy_params)
        assert fused_metrics.train_loss == legacy_metrics.train_loss
