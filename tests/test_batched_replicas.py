"""The batched replica executor must match per-replica autograd gradients."""

import numpy as np
import pytest

from repro import nn
from repro.core.batched_replicas import BatchedReplicaExecutor
from repro.core.flat_buffer import WorldFlatBuffers
from repro.models.fnn import FNN3
from repro.tensor import Tensor, functional as F


def build_replicas(P, seed_offset=0):
    return [FNN3(input_dim=12, hidden_dims=(9, 9, 9), num_classes=4, seed=3)
            for _ in range(P)]


def autograd_reference(replicas, inputs, targets):
    """Per-replica autograd gradients and losses (the seed semantics)."""
    gradients, losses = [], []
    for replica, x, y in zip(replicas, inputs, targets):
        replica.zero_grad()
        logits = replica(Tensor(x))
        loss = F.cross_entropy(logits, y)
        loss.backward()
        gradients.append(np.concatenate([np.asarray(p.grad, dtype=np.float32).reshape(-1)
                                         for p in replica.parameters()]))
        losses.append(loss.item())
    return np.stack(gradients), losses


class TestSupports:
    def test_supports_fnn(self):
        assert BatchedReplicaExecutor.supports(FNN3(input_dim=8, hidden_dims=(4, 4, 4),
                                                    num_classes=3))

    def test_supports_bare_sequential_mlp(self):
        assert BatchedReplicaExecutor.supports(
            nn.Sequential(nn.Linear(5, 4), nn.ReLU(), nn.Linear(4, 2)))

    def test_rejects_non_mlp(self):
        assert not BatchedReplicaExecutor.supports(
            nn.Sequential(nn.Linear(5, 4), nn.Dropout(0.5), nn.Linear(4, 2)))

    def test_rejects_models_without_net(self):
        class Weird(nn.Module):
            def __init__(self):
                super().__init__()
                self.layer = nn.Linear(3, 3)

        assert not BatchedReplicaExecutor.supports(Weird())


class TestGradientEquivalence:
    @pytest.mark.parametrize("P,batch", [(1, 8), (4, 16)])
    def test_matches_autograd(self, rng, P, batch):
        replicas = build_replicas(P)
        # Diverge the replicas so the batched path really handles P distinct
        # weight sets (as A2SGD training does).
        for i, replica in enumerate(replicas):
            for param in replica.parameters():
                param.data += (0.01 * (i + 1)) * rng.standard_normal(param.data.shape
                                                                     ).astype(np.float32)

        inputs = rng.standard_normal((P, batch, 12)).astype(np.float32)
        targets = rng.integers(0, 4, size=(P, batch))
        expected_grads, expected_losses = autograd_reference(replicas, inputs, targets)

        world = WorldFlatBuffers(replicas)
        executor = BatchedReplicaExecutor(replicas, world)
        losses = executor.forward_backward(inputs, targets)

        np.testing.assert_allclose(world.grad_matrix, expected_grads, rtol=1e-5, atol=1e-7)
        np.testing.assert_allclose(losses, expected_losses, rtol=1e-5)

    def test_image_shaped_inputs_are_flattened(self, rng):
        replicas = [FNN3(input_dim=16, hidden_dims=(6, 6, 6), num_classes=3, seed=1)
                    for _ in range(2)]
        world = WorldFlatBuffers(replicas)
        executor = BatchedReplicaExecutor(replicas, world)
        inputs = rng.standard_normal((2, 5, 1, 4, 4)).astype(np.float32)
        targets = rng.integers(0, 3, size=(2, 5))
        losses = executor.forward_backward(inputs, targets)
        assert len(losses) == 2 and all(np.isfinite(l) for l in losses)

    def test_param_grad_views_attached_after_run(self, rng):
        replicas = build_replicas(2)
        world = WorldFlatBuffers(replicas)
        executor = BatchedReplicaExecutor(replicas, world)
        inputs = rng.standard_normal((2, 4, 12)).astype(np.float32)
        targets = rng.integers(0, 4, size=(2, 4))
        executor.forward_backward(inputs, targets)
        for p, replica in enumerate(replicas):
            flat = np.concatenate([np.asarray(q.grad).reshape(-1)
                                   for q in replica.parameters()])
            np.testing.assert_array_equal(flat, world.grad_matrix[p])

    def test_wrong_world_size_raises(self, rng):
        replicas = build_replicas(2)
        world = WorldFlatBuffers(replicas)
        executor = BatchedReplicaExecutor(replicas, world)
        with pytest.raises(ValueError):
            executor.forward_backward(rng.standard_normal((3, 4, 12)).astype(np.float32),
                                      rng.integers(0, 4, size=(3, 4)))


class TestFusedTrainerEquivalence:
    def test_fused_and_legacy_trainers_converge_identically(self):
        """End-to-end: the fused pipeline must track the seed path to float32
        round-off over a full multi-epoch run (same data, same seeds)."""
        from repro.core import DistributedTrainer, TrainerConfig
        from repro.core.flatten import flatten_parameters

        def run(fused):
            config = TrainerConfig(model="fnn3", preset="tiny", algorithm="a2sgd",
                                   world_size=4, epochs=2, batch_size=16,
                                   max_iterations_per_epoch=6, num_train=256,
                                   num_test=64, seed=0, fused_pipeline=fused)
            trainer = DistributedTrainer(config)
            metrics = trainer.train()
            return np.stack([flatten_parameters(m) for m in trainer.replicas]), metrics

        fused_params, fused_metrics = run(True)
        legacy_params, legacy_metrics = run(False)
        np.testing.assert_allclose(fused_params, legacy_params, atol=1e-5)
        np.testing.assert_allclose(fused_metrics.train_loss, legacy_metrics.train_loss,
                                   rtol=1e-4)
