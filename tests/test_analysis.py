"""Tests for gradient statistics, convergence diagnostics, scaling and reporting."""

import numpy as np
import pytest

from repro.analysis import (
    GradientDistributionTracker,
    assumption3_bound_estimate,
    empirical_gradient_bound_holds,
    format_figure_series,
    format_table,
    gradient_histogram,
    reconstruction_preserves_mean,
    render_convergence_figure,
    render_iteration_time_figure,
    render_table2,
    scaling_efficiency_table,
    speedup_curve,
    variance_ratio,
)
from repro.analysis.convergence import track_gradient_bound_samples
from repro.core.cost_model import CompressionTimingEstimator, CostModel


class TestGradientHistogram:
    def test_histogram_counts_sum_to_in_range_samples(self, rng):
        g = rng.standard_normal(10_000) * 0.01
        snap = gradient_histogram(g, bins=31)
        assert snap["counts"].sum() <= 10_000
        assert snap["counts"].sum() > 9_000
        assert len(snap["edges"]) == 32

    def test_statistics_match_numpy(self, rng):
        g = rng.standard_normal(5_000) * 0.02
        snap = gradient_histogram(g)
        assert snap["mean"] == pytest.approx(g.mean(), abs=1e-6)
        assert snap["std"] == pytest.approx(g.std(), rel=1e-6)
        assert snap["mu_plus"] == pytest.approx(g[g >= 0].mean(), rel=1e-6)
        assert snap["mu_minus"] == pytest.approx(np.abs(g[g < 0]).mean(), rel=1e-6)

    def test_empty_gradient_raises(self):
        with pytest.raises(ValueError):
            gradient_histogram(np.array([]))

    def test_explicit_range(self, rng):
        snap = gradient_histogram(rng.standard_normal(100), bins=11, value_range=(-1, 1))
        assert snap["edges"][0] == pytest.approx(-1.0)
        assert snap["edges"][-1] == pytest.approx(1.0)

    def test_tracker_snapshots_only_requested_iterations(self, rng):
        tracker = GradientDistributionTracker(snapshot_iterations=(0, 2))
        for _ in range(4):
            tracker.observe(rng.standard_normal(100))
        assert set(tracker.snapshots) == {0, 2}
        assert tracker.iterations_seen == 4

    def test_tracker_progressions(self, rng):
        tracker = GradientDistributionTracker(snapshot_iterations=(0, 1, 2))
        for scale in (1.0, 0.5, 0.1):
            tracker.observe(rng.standard_normal(2_000) * scale)
        stds = [s for _, s in tracker.concentration_progression()]
        assert stds[0] > stds[-1]
        near_zero = tracker.near_zero_progression()
        assert len(near_zero) == 3


class TestConvergenceDiagnostics:
    def test_assumption3_fit_covers_samples(self, rng):
        distances = rng.uniform(0.1, 10.0, size=50)
        norms = 2.0 + 3.0 * distances + rng.uniform(0, 0.5, size=50)
        a, b = assumption3_bound_estimate(norms, distances)
        assert np.all(norms <= a + b * distances + 1e-9)

    def test_assumption3_requires_matching_lengths(self):
        with pytest.raises(ValueError):
            assumption3_bound_estimate([1.0], [1.0, 2.0])

    def test_empirical_bound_holds_for_bounded_gradients(self, rng):
        norms = rng.uniform(0, 5, size=100)
        distances = rng.uniform(0, 10, size=100)
        assert empirical_gradient_bound_holds(norms, distances)

    def test_empirical_bound_fails_for_absurd_constants(self):
        assert not empirical_gradient_bound_holds([1e12], [1e-9], max_constant=1e6)

    def test_variance_ratio(self, rng):
        g = rng.standard_normal(1000)
        assert variance_ratio(g, g) == pytest.approx(1.0)
        assert variance_ratio(g, np.zeros_like(g)) == pytest.approx(0.0)
        assert variance_ratio(np.zeros(10), np.zeros(10)) == 1.0

    def test_reconstruction_preserves_mean_small_gap(self, rng):
        gradients = [rng.standard_normal(2000) * 0.01 for _ in range(4)]
        gap = reconstruction_preserves_mean(gradients)
        assert 0.0 <= gap < 0.35

    def test_track_gradient_bound_samples(self, rng):
        weights = [rng.standard_normal(5) for _ in range(3)]
        gradients = [rng.standard_normal(5) for _ in range(3)]
        optimum = np.zeros(5)
        norms, distances = track_gradient_bound_samples(weights, gradients, optimum)
        assert len(norms) == len(distances) == 3
        assert all(v >= 0 for v in norms + distances)


class TestScaling:
    @pytest.fixture(scope="class")
    def cost_model(self):
        return CostModel(timing=CompressionTimingEstimator(sample_size=20_000, repeats=1))

    def test_scaling_table_structure(self, cost_model):
        table = scaling_efficiency_table(cost_model, models=("fnn3", "lstm_ptb"),
                                         algorithms=("dense", "a2sgd"))
        assert set(table) == {"dense", "a2sgd"}
        assert set(table["a2sgd"]) == {"fnn3", "lstm_ptb"}
        assert all(v > 0 for v in table["a2sgd"].values())

    def test_speedup_curve_monotone(self, cost_model):
        speedups = speedup_curve(cost_model, "vgg16", "a2sgd", world_sizes=(2, 4, 8))
        assert speedups[0] == pytest.approx(1.0)
        assert speedups[-1] > speedups[0]


class TestReporting:
    def test_format_table_alignment_and_floats(self):
        text = format_table(["name", "value"], [["a2sgd", 1.23456], ["dense", 2.0]],
                            title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a2sgd" in text and "1.235" in text

    def test_format_table_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_format_figure_series(self):
        text = format_figure_series({"dense": [1.0, 2.0], "a2sgd": [0.5, 0.6]},
                                    x_values=[2, 4], x_label="workers", title="Figure X")
        assert "workers" in text and "dense" in text and "a2sgd" in text
        assert "Figure X" in text

    def test_render_table2(self):
        text = render_table2(
            complexities={"dense": "O(1)", "a2sgd": "O(n)"},
            traffic_bits={"dense": "32n", "a2sgd": "64"},
            scaling={"dense": {"fnn3": 1.8}, "a2sgd": {"fnn3": 1.9}},
            models=("fnn3",))
        assert "Table 2" in text
        assert "a2sgd" in text and "O(n)" in text

    def test_render_figures(self):
        conv = render_convergence_figure({"dense": [10, 50]}, epochs=[1, 2],
                                         metric_name="top1", model="fnn3", world_size=8)
        assert "Figure 3" in conv
        iter_fig = render_iteration_time_figure({"dense": [0.1, 0.2]}, world_sizes=[2, 4],
                                                model="vgg16")
        assert "Figure 4" in iter_fig
