"""Convergence tests for Algorithm 1 on the quadratic problem (Theorem 1)."""

import numpy as np
import pytest

from repro.core.algorithm1 import (
    QuadraticProblem,
    a2sgd_quadratic_descent,
    dense_quadratic_descent,
)


@pytest.fixture(scope="module")
def problem():
    return QuadraticProblem(dimension=30, rows_per_worker=150, world_size=4,
                            noise_std=0.01, seed=0)


class TestQuadraticProblem:
    def test_optimum_reproducible(self):
        a = QuadraticProblem(dimension=10, seed=1)
        b = QuadraticProblem(dimension=10, seed=1)
        np.testing.assert_array_equal(a.optimum, b.optimum)

    def test_gradient_vanishes_at_optimum_without_noise(self):
        problem = QuadraticProblem(dimension=8, rows_per_worker=50, world_size=2,
                                   noise_std=0.0, seed=2)
        rows = np.arange(50)
        for rank in range(2):
            grad = problem.gradient(rank, problem.optimum, rows)
            np.testing.assert_allclose(grad, np.zeros(8), atol=1e-10)

    def test_gradient_points_towards_optimum(self, problem):
        w = problem.optimum + 1.0
        rows = np.arange(problem.rows_per_worker)
        grad = problem.gradient(0, w, rows)
        # Moving against the gradient must reduce the distance to w*.
        assert problem.distance_to_optimum(w - 0.01 * grad) < problem.distance_to_optimum(w)


class TestDenseBaseline:
    def test_dense_sgd_converges(self, problem):
        trace = dense_quadratic_descent(problem, iterations=300, base_lr=0.05)
        assert trace.distances[-1] < 0.1 * trace.distances[0]
        assert trace.final_distance < 0.5


class TestA2SGDConvergence:
    def test_a2sgd_converges_towards_optimum(self, problem):
        trace = a2sgd_quadratic_descent(problem, iterations=300, base_lr=0.05)
        assert trace.distances[-1] < 0.2 * trace.distances[0]

    def test_a2sgd_final_distance_close_to_dense(self, problem):
        """The paper's headline theoretical claim: A2SGD converges like dense SGD."""
        dense = dense_quadratic_descent(problem, iterations=400, base_lr=0.05)
        a2sgd = a2sgd_quadratic_descent(problem, iterations=400, base_lr=0.05)
        assert a2sgd.final_distance < max(3.0 * dense.final_distance, 0.5)

    def test_error_feedback_matters(self, problem):
        """Dropping the local error vector (the ablation) hurts convergence."""
        with_ef = a2sgd_quadratic_descent(problem, iterations=300, base_lr=0.05,
                                          error_feedback=True)
        without_ef = a2sgd_quadratic_descent(problem, iterations=300, base_lr=0.05,
                                             error_feedback=False)
        assert with_ef.final_distance < without_ef.final_distance

    def test_distance_trend_is_decreasing(self, problem):
        trace = a2sgd_quadratic_descent(problem, iterations=200, base_lr=0.05)
        first_quarter = np.mean(trace.distances[:50])
        last_quarter = np.mean(trace.distances[-50:])
        assert last_quarter < first_quarter

    def test_final_synchronization_produces_consensus(self, problem):
        trace = a2sgd_quadratic_descent(problem, iterations=50, base_lr=0.05)
        assert trace.final_weights is not None
        assert trace.final_weights.shape == (problem.dimension,)

    def test_reproducible_given_seed(self, problem):
        a = a2sgd_quadratic_descent(problem, iterations=50, base_lr=0.05, seed=3)
        b = a2sgd_quadratic_descent(problem, iterations=50, base_lr=0.05, seed=3)
        np.testing.assert_allclose(a.distances, b.distances)
