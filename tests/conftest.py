"""Shared fixtures and numerical-gradient-checking helpers."""

from __future__ import annotations

from typing import Callable

import numpy as np
import pytest

from repro.tensor import Tensor


@pytest.fixture(scope="session", autouse=True)
def no_leaked_shared_memory():
    """Fail the suite if any test leaks a shared-memory segment.

    The multiprocessing backend allocates named ``/dev/shm`` segments; every
    code path (including error paths) must unlink them.  Runs after the whole
    session so one noisy test cannot hide behind a later cleanup.
    """
    from repro.backends import leaked_segments

    yield
    leaked = leaked_segments()
    assert leaked == [], (f"shared-memory segments leaked by the test "
                          f"session: {leaked}")


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture
def gradient_vector(rng) -> np.ndarray:
    """A bell-shaped gradient vector similar to what real training produces."""
    return (rng.standard_normal(4096) * 0.01).astype(np.float32)


def numerical_gradient(fn: Callable[[np.ndarray], float], x: np.ndarray,
                       eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x.reshape(x.shape))
        flat[i] = original - eps
        minus = fn(x.reshape(x.shape))
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(build_loss: Callable[[Tensor], "Tensor"], x: np.ndarray,
                   rtol: float = 2e-2, atol: float = 2e-3) -> None:
    """Compare autograd gradients against central differences.

    ``build_loss`` maps an input Tensor to a scalar loss Tensor; the check is
    run in float64 via the numerical side and float32 via autograd, so the
    tolerances are modest.
    """
    x = np.asarray(x, dtype=np.float32)
    tensor = Tensor(x.copy(), requires_grad=True)
    loss = build_loss(tensor)
    loss.backward()
    assert tensor.grad is not None, "autograd did not produce a gradient"

    def scalar(values: np.ndarray) -> float:
        return float(build_loss(Tensor(values.astype(np.float32))).item())

    numeric = numerical_gradient(scalar, x)
    np.testing.assert_allclose(tensor.grad, numeric, rtol=rtol, atol=atol)
