"""Async strategies (async_ps, easgd): construction, validation, worker-step
semantics on a fake engine, end-to-end runs on the virtual clock, and the
PR's two acceptance pins (lockstep bit-identity under a constant compute
model; async_ps beating allreduce on simulated time-to-accuracy under a
straggler fabric)."""

import numpy as np
import pytest

from repro.analysis.sweeps import time_to_accuracy_sweep
from repro.comm.inprocess import InProcessWorld
from repro.compress.registry import COMPRESSORS
from repro.core.experiment import run_experiment
from repro.core.flatten import flatten_parameters
from repro.core.spec import ExperimentSpec
from repro.core.trainer import DistributedTrainer, TrainerConfig
from repro.sync import SyncSpec
from repro.sync.async_strategies import (
    AsyncParameterServerStrategy,
    ElasticAveragingStrategy,
)
from repro.sync.base import SYNC_STRATEGIES


# --------------------------------------------------------------------- #
# harness
# --------------------------------------------------------------------- #
class FakeEngine:
    """Minimal engine protocol: plain SGD on flat (P, n) buffers."""

    def __init__(self, world_size: int, n: int = 4):
        self.param_matrix = np.zeros((world_size, n), dtype=np.float32)
        self.grad_matrix = np.zeros((world_size, n), dtype=np.float32)
        self.num_parameters = n

    def flat_update(self, params, grads, lr, *, velocity=None, scratch=None):
        params -= np.float32(lr) * np.asarray(grads, dtype=np.float32)

    def apply_local_step(self, rank, lr):
        self.flat_update(self.param_matrix[rank:rank + 1],
                         self.grad_matrix[rank:rank + 1], lr)


def bound_strategy(world_size: int = 2, n: int = 4, **sync_fields):
    """A built-and-bound strategy plus its fake engine, via SyncSpec.build."""
    world = InProcessWorld(world_size)
    compressors = [COMPRESSORS.create("dense") for _ in range(world_size)]
    strategy = SyncSpec(**sync_fields).build(world, compressors)
    engine = FakeEngine(world_size, n)
    return strategy, engine


def make_config(world_size: int = 2, **overrides) -> TrainerConfig:
    kwargs = dict(model="fnn3", preset="tiny", algorithm="dense",
                  world_size=world_size, epochs=1, max_iterations_per_epoch=3,
                  batch_size=8, num_train=128, num_test=32)
    kwargs.update(overrides)
    return TrainerConfig(**kwargs)


def tiny_spec(**overrides) -> ExperimentSpec:
    kwargs = dict(model="fnn3", preset="tiny", algorithm="dense",
                  world_size=2, epochs=1, max_iterations_per_epoch=3,
                  batch_size=8, num_train=128, num_test=32, seed=0)
    kwargs.update(overrides)
    return ExperimentSpec(**kwargs)


# --------------------------------------------------------------------- #
# registration & construction
# --------------------------------------------------------------------- #
class TestRegistration:
    def test_strategies_registered(self):
        names = SYNC_STRATEGIES.list()
        assert "async_ps" in names
        assert "easgd" in names

    def test_aliases(self):
        assert SYNC_STRATEGIES.canonical("downpour") == "async_ps"
        assert SYNC_STRATEGIES.canonical("parameter_server") == "async_ps"
        assert SYNC_STRATEGIES.canonical("elastic_averaging") == "easgd"

    def test_is_async_flag(self):
        assert AsyncParameterServerStrategy.is_async
        assert ElasticAveragingStrategy.is_async
        assert not getattr(SYNC_STRATEGIES.get("allreduce"), "is_async", False)

    def test_lockstep_exchange_is_refused(self):
        strategy, _ = bound_strategy(strategy="async_ps")
        with pytest.raises(RuntimeError, match="simulation engine"):
            strategy.exchange([np.zeros(4, dtype=np.float32)] * 2)
        with pytest.raises(RuntimeError, match="simulation engine"):
            strategy.exchange_batched(np.zeros((2, 4), dtype=np.float32))


class TestConstructorValidation:
    @pytest.mark.parametrize("bad", [-1, 1.5, True, "8"])
    def test_staleness_bound_must_be_nonnegative_int(self, bad):
        with pytest.raises(ValueError,
                           match="staleness_bound must be an integer >= 0"):
            AsyncParameterServerStrategy(staleness_bound=bad)

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5])
    def test_staleness_penalty_range(self, bad):
        with pytest.raises(ValueError, match="staleness_penalty"):
            AsyncParameterServerStrategy(staleness_penalty=bad)

    @pytest.mark.parametrize("bad", [0.0, -1.0, 2.0])
    def test_moving_rate_range(self, bad):
        with pytest.raises(ValueError, match="moving_rate"):
            ElasticAveragingStrategy(moving_rate=bad)


# --------------------------------------------------------------------- #
# spec-level validation
# --------------------------------------------------------------------- #
class TestSpecValidation:
    def test_bad_strategy_kwargs_surface_constructor_error(self):
        problems = SyncSpec(strategy="async_ps",
                            strategy_kwargs={"staleness_bound": -1}).problems()
        assert len(problems) == 1
        assert "cannot be constructed" in problems[0]
        assert "staleness_bound must be an integer >= 0" in problems[0]

    def test_async_rejects_robust_aggregator(self):
        problems = SyncSpec(strategy="async_ps",
                            aggregator="trimmed_mean").problems()
        assert any("cannot run a robust aggregator" in p for p in problems)
        strategy_problems = SyncSpec(strategy="easgd",
                                     aggregator="geometric_median").problems()
        assert any("cannot run a robust aggregator" in p
                   for p in strategy_problems)

    def test_async_ps_rejects_allgather_compressor(self):
        problems = SyncSpec(strategy="async_ps").problems(algorithm="topk")
        assert any("allgather exchange" in p for p in problems)
        assert SyncSpec(strategy="async_ps").problems(algorithm="dense") == []
        assert SyncSpec(strategy="async_ps").problems(algorithm="a2sgd") == []

    def test_bind_enforces_the_same_rules(self):
        world = InProcessWorld(2)
        dense = [COMPRESSORS.create("dense") for _ in range(2)]
        with pytest.raises(ValueError, match="use the 'mean' aggregator"):
            SyncSpec(strategy="easgd", aggregator="coordinate_median").build(
                world, dense)
        topk = [COMPRESSORS.create("topk", ratio=0.1) for _ in range(2)]
        with pytest.raises(ValueError, match="rank-locally"):
            SyncSpec(strategy="async_ps").build(InProcessWorld(2), topk)

    def test_experiment_spec_validate_reports_invalid_staleness(self):
        # The `repro validate` contract exercised by the CI smoke job.
        spec = tiny_spec(sync={"strategy": "async_ps",
                               "strategy_kwargs": {"staleness_bound": -1}})
        with pytest.raises(ValueError,
                           match="staleness_bound must be an integer >= 0"):
            spec.validate()


# --------------------------------------------------------------------- #
# async_ps worker-step semantics (fake engine, exact arithmetic)
# --------------------------------------------------------------------- #
class TestAsyncParameterServer:
    def test_push_pull_updates_server_and_tracks_staleness(self):
        strategy, engine = bound_strategy(strategy="async_ps")
        strategy.async_setup(engine)
        engine.grad_matrix[0, :] = 1.0
        report = strategy.worker_step(0, lr=0.1)
        assert report.staleness == 0 and not report.rejected
        np.testing.assert_array_equal(strategy.server_params,
                                      np.full(4, -0.1, dtype=np.float32))
        np.testing.assert_array_equal(engine.param_matrix[0],
                                      strategy.server_params)
        assert strategy.version == 1

        # Rank 1 pulled at version 0, pushes at version 1 -> staleness 1.
        engine.grad_matrix[1, :] = 2.0
        report = strategy.worker_step(1, lr=0.1)
        assert report.staleness == 1 and not report.rejected
        np.testing.assert_allclose(strategy.server_params,
                                   np.full(4, -0.3, dtype=np.float32))
        assert strategy.staleness_histogram == {0: 1, 1: 1}
        assert strategy.rejected_pushes == 0

    def test_stale_push_is_rejected_but_worker_still_pulls(self):
        strategy, engine = bound_strategy(
            strategy="async_ps", strategy_kwargs={"staleness_bound": 0})
        strategy.async_setup(engine)
        engine.grad_matrix[0, :] = 1.0
        strategy.worker_step(0, lr=0.1)
        before = strategy.server_params.copy()

        engine.grad_matrix[1, :] = 5.0
        report = strategy.worker_step(1, lr=0.1)
        assert report.rejected and report.staleness == 1
        np.testing.assert_array_equal(strategy.server_params, before)
        assert strategy.version == 1                 # rejected push absorbs nothing
        np.testing.assert_array_equal(engine.param_matrix[1], before)
        assert strategy.rejected_pushes == 1
        # The worker re-pulled, so its next push is fresh again.
        engine.grad_matrix[1, :] = 1.0
        assert strategy.worker_step(1, lr=0.1).staleness == 0

    def test_staleness_penalty_scales_the_update(self):
        strategy, engine = bound_strategy(
            strategy="async_ps", strategy_kwargs={"staleness_penalty": 0.5})
        strategy.async_setup(engine)
        engine.grad_matrix[0, :] = 1.0
        strategy.worker_step(0, lr=0.1)              # server = -0.1
        engine.grad_matrix[1, :] = 2.0
        strategy.worker_step(1, lr=0.1)              # staleness 1: g * 0.5
        np.testing.assert_allclose(strategy.server_params,
                                   np.full(4, -0.2, dtype=np.float32))

    def test_consensus_and_finalize_use_the_server(self):
        strategy, engine = bound_strategy(strategy="async_ps")
        assert strategy.consensus_vector() is None   # before setup
        strategy.async_setup(engine)
        engine.grad_matrix[0, :] = 1.0
        strategy.worker_step(0, lr=0.1)
        np.testing.assert_array_equal(strategy.consensus_vector(),
                                      strategy.server_params)
        finalized = strategy.finalize([np.zeros(4, dtype=np.float32)] * 2)
        for vector in finalized:
            np.testing.assert_array_equal(vector, strategy.server_params)

    def test_comm_is_priced_and_wire_bits_counted(self):
        strategy, engine = bound_strategy(strategy="async_ps", )
        strategy.async_setup(engine)
        n = engine.num_parameters
        report = strategy.worker_step(0, lr=0.1)
        assert report.comm_time_s > 0.0
        assert report.wire_bits == strategy.compressors[0].wire_bits(n) + 32.0 * n
        assert strategy.wire_bits_per_iteration(n, 2) == \
            strategy.compressors[0].wire_bits(n) + 32.0 * n

    def test_state_arrays_round_trip(self):
        strategy, engine = bound_strategy(strategy="async_ps")
        strategy.async_setup(engine)
        for rank, scale in ((0, 1.0), (1, 2.0), (0, 3.0)):
            engine.grad_matrix[rank, :] = scale
            strategy.worker_step(rank, lr=0.1)
        arrays = strategy.state_arrays()

        clone, clone_engine = bound_strategy(strategy="async_ps")
        clone.load_state_arrays(arrays)
        clone.async_setup(clone_engine)              # must not clobber state
        np.testing.assert_array_equal(clone.server_params, strategy.server_params)
        np.testing.assert_array_equal(clone.server_velocity,
                                      strategy.server_velocity)
        np.testing.assert_array_equal(clone.pull_versions, strategy.pull_versions)
        assert clone.version == strategy.version
        assert clone.staleness_histogram == strategy.staleness_histogram
        assert clone.rejected_pushes == strategy.rejected_pushes


# --------------------------------------------------------------------- #
# easgd worker-step semantics
# --------------------------------------------------------------------- #
class TestElasticAveraging:
    def test_local_steps_between_elastic_exchanges(self):
        strategy, engine = bound_strategy(strategy="easgd", period=2)
        strategy.async_setup(engine)
        engine.grad_matrix[0, :] = 1.0
        report = strategy.worker_step(0, lr=0.1)
        assert report.exchange == "local"
        assert report.comm_time_s == 0.0 and report.wire_bits == 0.0
        np.testing.assert_allclose(engine.param_matrix[0],
                                   np.full(4, -0.1, dtype=np.float32))
        np.testing.assert_array_equal(strategy.center,
                                      np.zeros(4, dtype=np.float32))

    def test_elastic_exchange_moves_worker_and_center_symmetrically(self):
        strategy, engine = bound_strategy(strategy="easgd", period=2,
                                          strategy_kwargs={"moving_rate": 0.5})
        engine.param_matrix[1, :] = 4.0
        strategy.async_setup(engine)                 # center = rank 0 row = 0
        engine.grad_matrix[1, :] = 0.0               # isolate the elastic move
        strategy.worker_step(1, lr=0.1)              # local (no-op: zero grad)
        report = strategy.worker_step(1, lr=0.1)     # elastic
        assert report.exchange == "elastic"
        assert report.comm_time_s > 0.0
        assert report.wire_bits == 64.0 * engine.num_parameters
        # x <- x - rho (x - c) = 4 - 0.5 * 4 = 2 ; c <- c + rho (x - c) = 2
        np.testing.assert_allclose(engine.param_matrix[1],
                                   np.full(4, 2.0, dtype=np.float32))
        np.testing.assert_allclose(strategy.center,
                                   np.full(4, 2.0, dtype=np.float32))

    def test_consensus_and_finalize_use_the_center(self):
        strategy, engine = bound_strategy(strategy="easgd", period=1)
        strategy.async_setup(engine)
        assert strategy.consensus_vector() is strategy.center
        finalized = strategy.finalize([np.ones(4, dtype=np.float32)] * 2)
        for vector in finalized:
            np.testing.assert_array_equal(vector, strategy.center)

    def test_wire_bits_amortized_over_period(self):
        strategy, _ = bound_strategy(strategy="easgd", period=4)
        assert strategy.wire_bits_per_iteration(100, 2) == 64.0 * 100 / 4

    def test_state_arrays_round_trip(self):
        strategy, engine = bound_strategy(strategy="easgd", period=2)
        strategy.async_setup(engine)
        engine.grad_matrix[:, :] = 1.0
        for rank in (0, 0, 1):
            strategy.worker_step(rank, lr=0.1)
        arrays = strategy.state_arrays()
        clone, clone_engine = bound_strategy(strategy="easgd", period=2)
        clone.load_state_arrays(arrays)
        clone.async_setup(clone_engine)
        np.testing.assert_array_equal(clone.center, strategy.center)
        np.testing.assert_array_equal(clone.local_steps, strategy.local_steps)


# --------------------------------------------------------------------- #
# end-to-end on the virtual clock
# --------------------------------------------------------------------- #
class TestEndToEnd:
    def test_async_ps_trains_and_reports(self):
        result = run_experiment(tiny_spec(
            sync={"strategy": "async_ps"},
            compute_model={"name": "lognormal", "sigma": 0.3}, clock_seed=3))
        sim = result.sim
        assert sim is not None and sim["strategy"] == "async_ps"
        assert sim["simulated_time_s"] > 0.0
        assert sim["total_steps"] == 2 * 3          # world_size x iterations
        histogram = {int(k): v for k, v in sim["staleness_histogram"].items()}
        assert sum(histogram.values()) == sim["total_steps"]
        assert np.isfinite(result.final_metric)
        assert len(result.metrics.simulated_time_s) == 1
        assert result.metrics.simulated_time_s[0] == pytest.approx(
            sim["simulated_time_s"])

    def test_easgd_fast_ranks_contribute_more_steps(self):
        result = run_experiment(tiny_spec(
            epochs=2, max_iterations_per_epoch=4,
            sync={"strategy": "easgd", "period": 2},
            compute_model={"name": "straggler", "slowdown": 8.0, "sigma": 0.0},
            clock_seed=0))
        sim = result.sim
        assert sim["strategy"] == "easgd"
        # Rank 1 runs 8x slower; the update budget flows to rank 0.
        assert sim["steps_per_rank"][0] > sim["steps_per_rank"][1]
        assert sum(sim["steps_per_rank"]) == 2 * 2 * 4
        assert np.isfinite(result.final_metric)

    def test_sync_run_without_compute_model_has_no_sim_report(self):
        result = run_experiment(tiny_spec())
        assert result.sim is None
        assert all(np.isnan(v) for v in result.metrics.simulated_time_s)

    def test_lockstep_run_with_compute_model_is_priced(self):
        result = run_experiment(tiny_spec(compute_model="constant"))
        sim = result.sim
        assert sim is not None and sim["strategy"] == "lockstep"
        assert sim["simulated_time_s"] > 0.0
        assert not np.isnan(result.metrics.simulated_time_s[0])


# --------------------------------------------------------------------- #
# acceptance pins
# --------------------------------------------------------------------- #
class TestAcceptance:
    def test_allreduce_under_constant_model_is_bit_identical(self):
        """Attaching the constant compute model only *prices* the lockstep
        run — every parameter of every replica stays exactly equal."""
        def train(config):
            trainer = DistributedTrainer(config)
            trainer.train()
            params = np.stack([flatten_parameters(m) for m in trainer.replicas])
            return trainer, params

        baseline_trainer, baseline = train(make_config(world_size=2))
        priced_trainer, priced = train(make_config(
            world_size=2, compute_model="constant", clock_seed=0))
        assert np.array_equal(baseline, priced)
        assert baseline_trainer.sim_report is None
        assert priced_trainer.sim_report is not None
        assert priced_trainer.simulated_time_s > 0.0

    def test_async_ps_beats_allreduce_on_time_to_accuracy(self):
        """Under a straggler fabric the async parameter server reaches the
        lockstep run's final accuracy in measurably less simulated time."""
        results = time_to_accuracy_sweep(
            model="fnn3", algorithm="dense", world_size=4, epochs=2,
            max_iterations_per_epoch=8, clock_seed=0,
            compute_model={"name": "straggler", "slowdown": 8.0, "sigma": 0.3},
            sync_setups={"allreduce": {"strategy": "allreduce"},
                         "async_ps": {"strategy": "async_ps"}})
        allreduce = results["allreduce"]
        async_ps = results["async_ps"]
        assert np.isfinite(allreduce["time_to_target"])
        assert np.isfinite(async_ps["time_to_target"])
        assert async_ps["time_to_target"] < allreduce["time_to_target"]
        assert async_ps["total_simulated_s"] < allreduce["total_simulated_s"]
