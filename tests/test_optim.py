"""Tests for SGD, LARS and the base optimizer."""

import numpy as np
import pytest

from repro import nn
from repro.optim import LARS, SGD
from repro.tensor import Tensor


def make_param(values) -> nn.Parameter:
    return nn.Parameter(np.asarray(values, dtype=np.float32))


class TestOptimizerBase:
    def test_requires_parameters(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_requires_positive_lr(self):
        with pytest.raises(ValueError):
            SGD([make_param([1.0])], lr=0.0)

    def test_set_lr_validates(self):
        opt = SGD([make_param([1.0])], lr=0.1)
        with pytest.raises(ValueError):
            opt.set_lr(-1.0)
        opt.set_lr(0.5)
        assert opt.lr == 0.5

    def test_zero_grad(self):
        p = make_param([1.0])
        p.grad = np.array([2.0], dtype=np.float32)
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None


class TestSGD:
    def test_vanilla_update(self):
        p = make_param([1.0, 2.0])
        p.grad = np.array([0.5, -0.5], dtype=np.float32)
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95, 2.05])

    def test_skips_parameters_without_gradient(self):
        p = make_param([1.0])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_weight_decay_pulls_towards_zero(self):
        p = make_param([1.0])
        p.grad = np.array([0.0], dtype=np.float32)
        SGD([p], lr=0.1, weight_decay=0.1).step()
        assert p.data[0] < 1.0

    def test_momentum_accumulates(self):
        p = make_param([0.0])
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()                       # velocity = 1, p = -1
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()                       # velocity = 1.9, p = -2.9
        np.testing.assert_allclose(p.data, [-2.9], rtol=1e-6)

    def test_nesterov_differs_from_plain_momentum(self):
        p1, p2 = make_param([0.0]), make_param([0.0])
        opt1 = SGD([p1], lr=1.0, momentum=0.9)
        opt2 = SGD([p2], lr=1.0, momentum=0.9, nesterov=True)
        for opt, p in ((opt1, p1), (opt2, p2)):
            p.grad = np.array([1.0], dtype=np.float32)
            opt.step()
        assert p2.data[0] < p1.data[0]

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([make_param([1.0])], lr=0.1, nesterov=True)

    def test_negative_momentum_rejected(self):
        with pytest.raises(ValueError):
            SGD([make_param([1.0])], lr=0.1, momentum=-0.5)

    def test_state_dict_roundtrip(self):
        p = make_param([0.0])
        opt = SGD([p], lr=0.5, momentum=0.9)
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        state = opt.state_dict()

        q = make_param(p.data.copy())
        opt2 = SGD([q], lr=0.1, momentum=0.9)
        opt2.load_state_dict(state)
        assert opt2.lr == 0.5
        q.grad = np.array([1.0], dtype=np.float32)
        opt2.step()
        # With the restored velocity the second optimizer reproduces step 2.
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(q.data, p.data, rtol=1e-6)

    def test_converges_on_quadratic(self):
        p = make_param([5.0])
        opt = SGD([p], lr=0.1, momentum=0.5)
        for _ in range(200):
            p.grad = 2 * p.data          # gradient of x^2
            opt.step()
        assert abs(p.data[0]) < 1e-3


class TestStepFlat:
    """The fused whole-buffer step must match the per-parameter loop."""

    @staticmethod
    def build_model():
        return nn.Sequential(nn.Linear(7, 5, rng=np.random.default_rng(1)), nn.ReLU(),
                             nn.Linear(5, 3, rng=np.random.default_rng(2)))

    @pytest.mark.parametrize("cls,kwargs", [
        (SGD, {}),
        (SGD, {"momentum": 0.9}),
        (SGD, {"momentum": 0.9, "weight_decay": 0.01}),
        (SGD, {"momentum": 0.9, "weight_decay": 0.01, "nesterov": True}),
        (LARS, {"momentum": 0.9, "weight_decay": 0.01}),
    ])
    def test_step_flat_matches_looped_step(self, cls, kwargs):
        from repro.core.flat_buffer import ModelFlatBuffers

        looped_model = self.build_model()
        looped_opt = cls(looped_model.parameters(), lr=0.1, **kwargs)
        fused_model = self.build_model()
        buffers = ModelFlatBuffers(fused_model)
        fused_opt = cls(fused_model.parameters(), lr=0.1, **kwargs)
        fused_opt.bind_flat(buffers)

        rng = np.random.default_rng(3)
        for _ in range(5):
            flat_grad = rng.standard_normal(buffers.params.size).astype(np.float32)
            offset = 0
            for p in looped_model.parameters():
                p.grad = flat_grad[offset:offset + p.size].reshape(p.data.shape).copy()
                offset += p.size
            looped_opt.step()
            fused_opt.step_flat(flat_grad)
            np.testing.assert_allclose(
                buffers.params,
                np.concatenate([p.data.reshape(-1) for p in looped_model.parameters()]),
                rtol=1e-6, atol=1e-7)

    def test_step_flat_requires_binding(self):
        opt = SGD([make_param([1.0])], lr=0.1)
        with pytest.raises(RuntimeError):
            opt.step_flat(np.zeros(1, dtype=np.float32))

    def test_bind_flat_rejects_foreign_buffers(self):
        from repro.core.flat_buffer import ModelFlatBuffers

        model_a, model_b = self.build_model(), self.build_model()
        buffers_b = ModelFlatBuffers(model_b)
        opt_a = SGD(model_a.parameters(), lr=0.1)
        with pytest.raises(ValueError):
            opt_a.bind_flat(buffers_b)

    def test_bound_looped_step_shares_momentum_with_step_flat(self):
        """After bind_flat, step() and step_flat() use the same velocity, so
        mixing them cannot silently fork the optimizer state."""
        from repro.core.flat_buffer import ModelFlatBuffers

        model = self.build_model()
        buffers = ModelFlatBuffers(model)
        opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
        opt.bind_flat(buffers)

        grad = np.ones(buffers.params.size, dtype=np.float32)
        opt.step_flat(grad)
        buffers.set_grad_vector(grad)
        opt.step()                       # second update through the loop path
        state = opt.state_dict()["velocity"]
        # velocity = 1 then 1.9 — the loop step continued the flat buffer
        np.testing.assert_allclose(state[0], np.full_like(state[0], 1.9), rtol=1e-6)

    def test_index_keyed_velocity_survives_parameter_gc(self):
        """Velocity is keyed by parameter index, so momentum cannot leak from
        a garbage-collected parameter whose id() gets reused."""
        p = make_param([0.0])
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        assert 0 in opt._velocity and id(p) not in opt._velocity


class TestLARS:
    def test_update_direction_matches_gradient_sign(self):
        p = make_param([1.0, 1.0])
        p.grad = np.array([1.0, -1.0], dtype=np.float32)
        LARS([p], lr=0.1, momentum=0.0).step()
        assert p.data[0] < 1.0 and p.data[1] > 1.0

    def test_trust_ratio_scales_small_gradients_up(self):
        # Two identical weights; one sees a tiny gradient, one a huge one.
        p_small, p_large = make_param([1.0]), make_param([1.0])
        p_small.grad = np.array([1e-6], dtype=np.float32)
        p_large.grad = np.array([1e2], dtype=np.float32)
        LARS([p_small], lr=0.1, momentum=0.0).step()
        LARS([p_large], lr=0.1, momentum=0.0).step()
        # LARS normalizes by gradient norm, so the applied steps are equal
        # (up to the epsilon floor in the trust-ratio denominator).
        np.testing.assert_allclose(1.0 - p_small.data[0], 1.0 - p_large.data[0], rtol=2e-2)

    def test_zero_weight_uses_unit_trust_ratio(self):
        p = make_param([0.0])
        p.grad = np.array([1.0], dtype=np.float32)
        LARS([p], lr=0.1, momentum=0.0).step()
        np.testing.assert_allclose(p.data, [-0.1], rtol=1e-6)

    def test_momentum_accumulates(self):
        p = make_param([1.0])
        opt = LARS([p], lr=0.1, momentum=0.9)
        first_delta = None
        previous = p.data.copy()
        for i in range(2):
            p.grad = np.array([1.0], dtype=np.float32)
            opt.step()
            delta = previous - p.data
            previous = p.data.copy()
            if i == 0:
                first_delta = delta
        assert delta[0] > first_delta[0]

    def test_converges_on_quadratic(self):
        p = make_param([3.0])
        opt = LARS([p], lr=1.0, momentum=0.9, trust_coefficient=0.01)
        for _ in range(500):
            p.grad = 2 * p.data
            opt.step()
        assert abs(p.data[0]) < 0.5
