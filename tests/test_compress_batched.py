"""Batched compressor kernels must be bit-identical to the per-rank loop.

For every registered algorithm, running ``compress_batch`` /
``decompress_batch`` over the stacked (P, n) gradient matrix must produce
exactly the payloads, contexts, reconstructions and error-feedback state that
the rank-by-rank ``compress`` / ``decompress`` loop produces — including
across iterations, where the residual state feeds back into the next
compression.  Stochastic compressors hold one RNG per rank, seeded
identically in both runs.
"""

import numpy as np
import pytest

from repro.compress import get_compressor, list_compressors
from repro.compress.base import ExchangeKind


WORLD_SIZE = 4
N = 1000
ITERATIONS = 4


def make_compressors(name):
    """Two identical banks of per-rank compressors (deterministic RNGs)."""

    def bank():
        compressors = []
        for rank in range(WORLD_SIZE):
            kwargs = {}
            if name in ("topk", "gaussiank", "randk", "dgc"):
                kwargs["ratio"] = 0.05
            compressor = get_compressor(name, **kwargs)
            if hasattr(compressor, "rng"):
                compressor.rng = np.random.default_rng(1000 + rank)
            compressors.append(compressor)
        return compressors

    return bank(), bank()


def gradient_stream(seed=7):
    rng = np.random.default_rng(seed)
    for _ in range(ITERATIONS):
        yield (rng.standard_normal((WORLD_SIZE, N)) * 0.01).astype(np.float32)


def reduce_exchanged(payloads, kind):
    """A deterministic stand-in for the collective (mean / gather)."""
    if kind is ExchangeKind.ALLREDUCE:
        mean = np.mean(np.stack([np.asarray(p, dtype=np.float64) for p in payloads]), axis=0)
        return [mean.copy() for _ in payloads]
    return [[np.asarray(p).copy() for p in payloads] for _ in payloads]


def run_looped(compressors, G, kind):
    payloads, contexts = [], []
    for compressor, row in zip(compressors, G):
        payload, ctx = compressor.compress(row.copy())
        payloads.append(payload)
        contexts.append(ctx)
    exchanged = reduce_exchanged(payloads, kind)
    if kind is ExchangeKind.ALLREDUCE:
        rows = [c.decompress(e, ctx) for c, e, ctx in zip(compressors, exchanged, contexts)]
    else:
        rows = [c.decompress_gathered(e, ctx)
                for c, e, ctx in zip(compressors, exchanged, contexts)]
    return payloads, contexts, np.stack([np.asarray(r, dtype=np.float32) for r in rows])


def run_batched(compressors, G, kind):
    cls = type(compressors[0])
    payloads, contexts = cls.compress_batch(compressors, G.copy())
    exchanged = reduce_exchanged(payloads, kind)
    matrix = cls.decompress_batch(compressors, exchanged, contexts)
    return payloads, contexts, np.asarray(matrix, dtype=np.float32)


@pytest.mark.parametrize("name", list_compressors())
def test_batched_bit_identical_to_loop(name):
    looped, batched = make_compressors(name)
    kind = looped[0].exchange
    for iteration, G in enumerate(gradient_stream()):
        lp, lc, lrows = run_looped(looped, G, kind)
        bp, bc, brows = run_batched(batched, G, kind)

        for rank in range(WORLD_SIZE):
            np.testing.assert_array_equal(
                np.asarray(lp[rank]), np.asarray(bp[rank]),
                err_msg=f"{name}: payload mismatch rank {rank} iter {iteration}")
            # Underscore-prefixed keys are private batch-kernel caches (e.g.
            # a2sgd's stacked mask/error matrices); the semantic context —
            # everything decompress()/the checkpoint may read — must match.
            def public(ctx):
                return {k for k in ctx if not k.startswith("_")}
            assert public(lc[rank]) == public(bc[rank])
            for key in public(lc[rank]):
                np.testing.assert_array_equal(
                    np.asarray(lc[rank][key]), np.asarray(bc[rank][key]),
                    err_msg=f"{name}: ctx[{key}] mismatch rank {rank} iter {iteration}")
        np.testing.assert_array_equal(
            lrows, brows, err_msg=f"{name}: reconstruction mismatch iter {iteration}")

        # Error-feedback state must also track bit-for-bit across iterations.
        for rank, (lo, ba) in enumerate(zip(looped, batched)):
            for attr in ("_residual", "_velocity"):
                lstate, bstate = getattr(lo, attr, None), getattr(ba, attr, None)
                if lstate is None and bstate is None:
                    continue
                assert lstate is not None and bstate is not None, \
                    f"{name}: {attr} present in only one path (rank {rank})"
                np.testing.assert_array_equal(
                    lstate, bstate,
                    err_msg=f"{name}: {attr} diverged rank {rank} iter {iteration}")


@pytest.mark.parametrize("name", list_compressors())
def test_batched_stats_track_loop(name):
    """Wire-traffic accounting must not depend on the execution path."""
    looped, batched = make_compressors(name)
    kind = looped[0].exchange
    for G in gradient_stream(seed=21):
        run_looped(looped, G, kind)
        run_batched(batched, G, kind)
    for lo, ba in zip(looped, batched):
        assert lo.stats.iterations == ba.stats.iterations
        assert lo.stats.total_wire_bits == ba.stats.total_wire_bits
        assert lo.stats.last_compression_error == pytest.approx(
            ba.stats.last_compression_error, rel=1e-5, abs=1e-9)


def test_mixed_configuration_falls_back_to_loop():
    """compress_batch with heterogeneous per-rank settings must still be
    correct (it falls back to the per-rank loop internally)."""
    ratios = [0.05, 0.1, 0.05, 0.1]
    batched = [get_compressor("topk", ratio=r) for r in ratios]
    looped = [get_compressor("topk", ratio=r) for r in ratios]
    G = (np.random.default_rng(3).standard_normal((4, N)) * 0.01).astype(np.float32)
    bp, bc = type(batched[0]).compress_batch(batched, G.copy())
    for compressor, row, payload, ctx in zip(looped, G, bp, bc):
        expected_payload, expected_ctx = compressor.compress(row.copy())
        np.testing.assert_array_equal(np.asarray(payload), np.asarray(expected_payload))
        assert ctx["k"] == expected_ctx["k"]


def test_custom_compressor_without_batch_kernels_works():
    """Third-party compressors that only implement compress/decompress work
    through the default batch entry points unchanged."""
    from repro.compress.base import Compressor

    class NegatingCompressor(Compressor):
        name = "negate"
        exchange = ExchangeKind.ALLREDUCE

        def compress(self, gradient):
            return -np.asarray(gradient), {"n": gradient.size}

        def decompress(self, global_payload, ctx):
            return -np.asarray(global_payload)

        def wire_bits(self, n, world_size=1):
            return 32.0 * n

        def computation_complexity(self, n):
            return "O(n)"

    compressors = [NegatingCompressor() for _ in range(3)]
    G = np.random.default_rng(0).standard_normal((3, 16)).astype(np.float32)
    payloads, contexts = NegatingCompressor.compress_batch(compressors, G)
    np.testing.assert_allclose(np.stack(payloads), -G)
    exchanged = reduce_exchanged(payloads, ExchangeKind.ALLREDUCE)
    matrix = NegatingCompressor.decompress_batch(compressors, exchanged, contexts)
    expected = np.broadcast_to(np.mean(G, axis=0, dtype=np.float64).astype(np.float32), G.shape)
    np.testing.assert_allclose(matrix, expected, atol=1e-6)
