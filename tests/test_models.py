"""Tests for the four evaluation models and the model registry."""

import numpy as np
import pytest

from repro.models import (
    FNN3,
    LSTMLanguageModel,
    MODEL_REGISTRY,
    PAPER_PARAMETER_COUNTS,
    ResNet,
    ResNet20,
    VGG16,
    build_model,
    get_model_spec,
    list_models,
)
from repro.tensor import Tensor, functional as F


class TestFNN3:
    def test_paper_size_parameter_count_close_to_table1(self):
        model = FNN3(input_dim=784, hidden_dims=(174, 174, 174), num_classes=10)
        count = model.num_parameters()
        paper = PAPER_PARAMETER_COUNTS["fnn3"]
        assert abs(count - paper) / paper < 0.005

    def test_forward_shape(self, rng):
        model = FNN3(input_dim=64, hidden_dims=(16, 16, 16))
        out = model(Tensor(rng.standard_normal((5, 64)).astype(np.float32)))
        assert out.shape == (5, 10)

    def test_accepts_image_shaped_input(self, rng):
        model = FNN3(input_dim=64, hidden_dims=(8, 8, 8))
        out = model(Tensor(rng.standard_normal((3, 1, 8, 8)).astype(np.float32)))
        assert out.shape == (3, 10)

    def test_requires_three_hidden_layers(self):
        with pytest.raises(ValueError):
            FNN3(hidden_dims=(10, 10))

    def test_same_seed_same_weights(self):
        a = FNN3(input_dim=16, hidden_dims=(4, 4, 4), seed=3)
        b = FNN3(input_dim=16, hidden_dims=(4, 4, 4), seed=3)
        for pa, pb in zip(a.parameters(), b.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_different_seed_different_weights(self):
        a = FNN3(input_dim=16, hidden_dims=(4, 4, 4), seed=1)
        b = FNN3(input_dim=16, hidden_dims=(4, 4, 4), seed=2)
        assert not np.allclose(a.parameters()[0].data, b.parameters()[0].data)


class TestResNet:
    def test_resnet20_depth_and_param_count(self):
        model = ResNet20()
        assert model.depth == 20
        paper = PAPER_PARAMETER_COUNTS["resnet20"]
        # The CIFAR ResNet-20 has ~0.27 M parameters; allow a few percent for
        # shortcut/BatchNorm accounting differences.
        assert abs(model.num_parameters() - paper) / paper < 0.05

    def test_tiny_forward_backward(self, rng):
        model = ResNet(blocks_per_stage=1, base_channels=(4, 8, 16))
        x = Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32))
        out = model(x)
        assert out.shape == (2, 10)
        loss = F.cross_entropy(out, np.array([1, 2]))
        loss.backward()
        assert all(p.grad is not None for p in model.parameters())

    def test_stage_downsampling_halves_resolution(self, rng):
        model = ResNet(blocks_per_stage=1, base_channels=(4, 8, 16))
        x = Tensor(rng.standard_normal((1, 3, 16, 16)).astype(np.float32))
        out = model.bn1(model.conv1(x)).relu()
        out = model.stage1(out)
        assert out.shape[2:] == (16, 16)
        out = model.stage2(out)
        assert out.shape[2:] == (8, 8)
        out = model.stage3(out)
        assert out.shape[2:] == (4, 4)

    def test_requires_three_stage_widths(self):
        with pytest.raises(ValueError):
            ResNet(base_channels=(16, 32))


class TestVGG16:
    def test_paper_size_parameter_count(self):
        model = VGG16(width_multiplier=1.0)
        paper = PAPER_PARAMETER_COUNTS["vgg16"]
        assert abs(model.num_parameters() - paper) / paper < 0.02

    def test_tiny_forward_shape(self, rng):
        model = VGG16(width_multiplier=0.0625)
        x = Tensor(rng.standard_normal((2, 3, 32, 32)).astype(np.float32))
        assert model(x).shape == (2, 10)

    def test_rejects_bad_image_size(self):
        with pytest.raises(ValueError):
            VGG16(image_size=20)

    def test_width_multiplier_scales_parameters(self):
        small = VGG16(width_multiplier=0.0625).num_parameters()
        smaller = VGG16(width_multiplier=0.03125).num_parameters()
        assert smaller < small


class TestLSTMLanguageModel:
    def test_paper_size_parameter_count(self):
        # Constructing the 66M-parameter model allocates ~260 MB; verify the
        # analytic count instead of instantiating it.
        vocab, d, h = 10000, 1500, 1500
        embedding = vocab * d
        lstm_layer1 = 4 * h * (d + h) + 8 * h
        lstm_layer2 = 4 * h * (h + h) + 8 * h
        decoder = h * vocab + vocab
        total = embedding + lstm_layer1 + lstm_layer2 + decoder
        paper = PAPER_PARAMETER_COUNTS["lstm_ptb"]
        assert abs(total - paper) / paper < 0.01

    def test_tiny_forward_and_state(self, rng):
        model = LSTMLanguageModel(vocab_size=50, embedding_dim=8, hidden_size=8, num_layers=1)
        tokens = rng.integers(0, 50, size=(5, 3))
        logits, state = model(tokens)
        assert logits.shape == (15, 50)
        assert len(state) == 1
        logits2, _ = model(tokens, state)
        assert logits2.shape == (15, 50)

    def test_rejects_one_dimensional_tokens(self, rng):
        model = LSTMLanguageModel(vocab_size=20, embedding_dim=4, hidden_size=4)
        with pytest.raises(ValueError):
            model(rng.integers(0, 20, size=10))

    def test_detach_state(self, rng):
        model = LSTMLanguageModel(vocab_size=20, embedding_dim=4, hidden_size=4)
        _, state = model(rng.integers(0, 20, size=(3, 2)))
        detached = model.detach_state(state)
        assert all(not h.requires_grad for h, _ in detached)

    def test_perplexity_conversion(self):
        assert LSTMLanguageModel.perplexity(0.0) == pytest.approx(1.0)
        assert LSTMLanguageModel.perplexity(np.log(100.0)) == pytest.approx(100.0, rel=1e-5)
        # Clamped to avoid overflow for divergent losses.
        assert np.isfinite(LSTMLanguageModel.perplexity(1000.0))


class TestRegistry:
    def test_list_models(self):
        assert set(list_models()) == {"fnn3", "vgg16", "resnet20", "lstm_ptb"}

    def test_every_registry_entry_is_buildable_tiny(self):
        for (name, preset), spec in MODEL_REGISTRY.items():
            if preset != "tiny":
                continue
            model = spec.build(seed=0)
            assert model.num_parameters() > 0

    def test_get_model_spec_unknown_raises(self):
        with pytest.raises(KeyError):
            get_model_spec("alexnet")
        with pytest.raises(KeyError):
            get_model_spec("fnn3", "huge")

    def test_paper_specs_metadata_matches_table1(self):
        spec = get_model_spec("lstm_ptb", "paper")
        assert spec.batch_size == 128
        assert spec.base_lr == pytest.approx(22.0)
        assert spec.metric == "perplexity"
        assert spec.epochs == 100
        spec_vgg = get_model_spec("vgg16", "paper")
        assert "LARS" in spec_vgg.lr_policy
        assert spec_vgg.epochs == 150

    def test_build_model_helper(self):
        model = build_model("fnn3", "tiny", seed=1)
        assert model.num_parameters() > 0

    def test_tiny_presets_are_small(self):
        for name in list_models():
            tiny = get_model_spec(name, "tiny")
            assert tiny.build(seed=0).num_parameters() < 100_000
