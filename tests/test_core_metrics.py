"""Tests for metrics and the iteration timeline."""

import numpy as np
import pytest

from repro.core.metrics import (
    TrainingMetrics,
    evaluate_classifier,
    evaluate_language_model,
    throughput_examples_per_second,
    top1_accuracy,
)
from repro.core.timeline import IterationTimeline, SyncReport
from repro.data import ArrayDataset, LanguageModelBatcher
from repro.models import build_model


class TestTop1Accuracy:
    def test_perfect_predictions(self):
        logits = np.eye(4) * 10
        assert top1_accuracy(logits, np.arange(4)) == 1.0

    def test_all_wrong(self):
        logits = np.zeros((3, 2))
        logits[:, 0] = 1.0
        assert top1_accuracy(logits, np.ones(3, dtype=int)) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            top1_accuracy(np.zeros((3, 2)), np.zeros(4))


class TestEvaluators:
    def test_evaluate_classifier_range_and_mode_restored(self, rng):
        model = build_model("fnn3", "tiny")
        dataset = ArrayDataset(rng.standard_normal((40, 1, 8, 8)).astype(np.float32),
                               rng.integers(0, 10, size=40))
        value = evaluate_classifier(model, dataset, batch_size=16)
        assert 0.0 <= value <= 100.0
        assert model.training  # switched back to train mode

    def test_evaluate_classifier_max_examples(self, rng):
        model = build_model("fnn3", "tiny")
        dataset = ArrayDataset(rng.standard_normal((40, 1, 8, 8)).astype(np.float32),
                               rng.integers(0, 10, size=40))
        value = evaluate_classifier(model, dataset, batch_size=16, max_examples=8)
        assert 0.0 <= value <= 100.0

    def test_evaluate_language_model_positive_perplexity(self, rng):
        model = build_model("lstm_ptb", "tiny")
        batcher = LanguageModelBatcher(rng.integers(0, 200, size=2000), batch_size=4,
                                       seq_len=10)
        perplexity = evaluate_language_model(model, batcher, max_batches=5)
        assert perplexity > 1.0
        assert np.isfinite(perplexity)

    def test_evaluate_language_model_empty_raises(self, rng):
        model = build_model("lstm_ptb", "tiny")
        batcher = LanguageModelBatcher(rng.integers(0, 200, size=2000), batch_size=4,
                                       seq_len=10)
        with pytest.raises(ValueError):
            evaluate_language_model(model, batcher, max_batches=0)


class TestTrainingMetrics:
    def test_record_and_properties(self):
        metrics = TrainingMetrics(metric_name="top1")
        metrics.record_epoch(0, 2.0, 50.0, comm_time=0.1, compute_time=1.0)
        metrics.record_epoch(1, 1.0, 75.0, comm_time=0.2, compute_time=2.0)
        assert metrics.final_metric == 75.0
        assert metrics.best_metric == 75.0
        assert metrics.as_dict()["metric"] == [50.0, 75.0]

    def test_best_metric_for_perplexity_is_minimum(self):
        metrics = TrainingMetrics(metric_name="perplexity")
        metrics.record_epoch(0, 5.0, 300.0, 0, 0)
        metrics.record_epoch(1, 4.0, 120.0, 0, 0)
        metrics.record_epoch(2, 4.5, 150.0, 0, 0)
        assert metrics.best_metric == 120.0

    def test_empty_metrics_raise(self):
        with pytest.raises(ValueError):
            _ = TrainingMetrics().final_metric
        with pytest.raises(ValueError):
            _ = TrainingMetrics().best_metric

    def test_throughput_helper(self):
        assert throughput_examples_per_second(100, 2.0) == 50.0
        with pytest.raises(ValueError):
            throughput_examples_per_second(100, 0.0)


class TestIterationTimeline:
    def test_record_accumulates_components(self):
        timeline = IterationTimeline()
        timeline.record(0.5, SyncReport(compression_time_s=0.1, comm_time_s=0.2))
        timeline.record(0.5, SyncReport(compression_time_s=0.1, comm_time_s=0.2))
        assert timeline.iterations == 2
        assert timeline.compute_s == pytest.approx(1.0)
        assert timeline.compression_s == pytest.approx(0.2)
        assert timeline.communication_s == pytest.approx(0.4)
        assert timeline.total_s == pytest.approx(1.6)
        assert timeline.mean_iteration_time() == pytest.approx(0.8)
        assert len(timeline.per_iteration) == 2

    def test_empty_timeline(self):
        timeline = IterationTimeline()
        assert timeline.mean_iteration_time() == 0.0
        assert timeline.as_dict()["iterations"] == 0.0

    def test_sync_report_defaults(self):
        report = SyncReport()
        assert report.exchange == "allreduce"
        assert report.wire_bits_per_worker == 0.0
