"""Tests for individual NN layers."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor


class TestLinear:
    def test_output_shape(self, rng):
        layer = nn.Linear(6, 3)
        out = layer(Tensor(rng.standard_normal((5, 6)).astype(np.float32)))
        assert out.shape == (5, 3)

    def test_no_bias(self):
        layer = nn.Linear(4, 2, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_deterministic_init_from_rng(self):
        a = nn.Linear(4, 4, rng=np.random.default_rng(3))
        b = nn.Linear(4, 4, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_gradients_flow_to_weight_and_bias(self, rng):
        layer = nn.Linear(3, 2)
        out = layer(Tensor(rng.standard_normal((4, 3)).astype(np.float32)))
        out.sum().backward()
        assert layer.weight.grad is not None and layer.weight.grad.shape == (2, 3)
        assert layer.bias.grad is not None and layer.bias.grad.shape == (2,)


class TestConv2dLayer:
    def test_output_shape_padding(self, rng):
        layer = nn.Conv2d(3, 8, 3, padding=1)
        out = layer(Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32)))
        assert out.shape == (2, 8, 8, 8)

    def test_strided_shape(self, rng):
        layer = nn.Conv2d(1, 4, 3, stride=2, padding=1)
        out = layer(Tensor(rng.standard_normal((1, 1, 8, 8)).astype(np.float32)))
        assert out.shape == (1, 4, 4, 4)

    def test_bias_disabled(self):
        layer = nn.Conv2d(2, 2, 3, bias=False)
        assert layer.bias is None

    def test_gradients_reach_weights(self, rng):
        layer = nn.Conv2d(2, 3, 3, padding=1)
        out = layer(Tensor(rng.standard_normal((1, 2, 5, 5)).astype(np.float32)))
        out.sum().backward()
        assert layer.weight.grad.shape == (3, 2, 3, 3)


class TestBatchNorm:
    def test_bn1d_normalizes_training_batch(self, rng):
        bn = nn.BatchNorm1d(5)
        x = Tensor((rng.standard_normal((64, 5)) * 3 + 7).astype(np.float32))
        out = bn(x)
        np.testing.assert_allclose(out.data.mean(axis=0), np.zeros(5), atol=1e-4)
        np.testing.assert_allclose(out.data.std(axis=0), np.ones(5), atol=1e-2)

    def test_bn1d_running_stats_update(self, rng):
        bn = nn.BatchNorm1d(3, momentum=0.5)
        x = Tensor((rng.standard_normal((32, 3)) + 10).astype(np.float32))
        bn(x)
        assert np.all(bn._buffers["running_mean"] > 1.0)

    def test_bn1d_eval_uses_running_stats(self, rng):
        bn = nn.BatchNorm1d(3, momentum=1.0)
        x = Tensor((rng.standard_normal((32, 3)) + 4).astype(np.float32))
        bn(x)
        bn.eval()
        y = Tensor(np.zeros((2, 3), dtype=np.float32))
        out = bn(y)
        # Zero input minus positive running mean -> negative outputs.
        assert np.all(out.data < 0)

    def test_bn2d_per_channel_normalization(self, rng):
        bn = nn.BatchNorm2d(4)
        x = Tensor((rng.standard_normal((8, 4, 6, 6)) * 2 + 3).astype(np.float32))
        out = bn(x)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), np.zeros(4), atol=1e-3)

    def test_bn2d_gradients_to_scale_and_shift(self, rng):
        bn = nn.BatchNorm2d(2)
        x = Tensor(rng.standard_normal((4, 2, 3, 3)).astype(np.float32))
        bn(x).sum().backward()
        assert bn.weight.grad is not None
        assert bn.bias.grad is not None
        # The shift gradient of a sum is the number of contributing positions.
        np.testing.assert_allclose(bn.bias.grad, np.full(2, 4 * 3 * 3), rtol=1e-4)


class TestDropoutLayer:
    def test_training_zeroes_some_elements(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones(1000, dtype=np.float32)))
        zero_fraction = float((out.data == 0).mean())
        assert 0.4 < zero_fraction < 0.6

    def test_eval_is_identity(self):
        layer = nn.Dropout(0.5)
        layer.eval()
        x = Tensor(np.ones(10, dtype=np.float32))
        np.testing.assert_array_equal(layer(x).data, x.data)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.5)


class TestEmbeddingLayer:
    def test_lookup_shape(self):
        layer = nn.Embedding(20, 6)
        out = layer(np.array([[0, 1, 2], [3, 4, 5]]))
        assert out.shape == (2, 3, 6)

    def test_gradient_accumulates_per_token(self):
        layer = nn.Embedding(10, 4)
        out = layer(np.array([1, 1, 2]))
        out.sum().backward()
        np.testing.assert_allclose(layer.weight.grad[1], np.full(4, 2.0))
        np.testing.assert_allclose(layer.weight.grad[3], np.zeros(4))


class TestActivationsAndFlatten:
    def test_relu_layer(self):
        out = nn.ReLU()(Tensor(np.array([-1.0, 2.0], dtype=np.float32)))
        np.testing.assert_allclose(out.data, [0.0, 2.0])

    def test_tanh_sigmoid_layers(self):
        x = Tensor(np.array([0.0], dtype=np.float32))
        assert nn.Tanh()(x).item() == pytest.approx(0.0)
        assert nn.Sigmoid()(x).item() == pytest.approx(0.5)

    def test_flatten_layer(self):
        out = nn.Flatten()(Tensor(np.zeros((4, 2, 3), dtype=np.float32)))
        assert out.shape == (4, 6)

    def test_loss_layers(self, rng):
        logits = Tensor(rng.standard_normal((4, 3)).astype(np.float32), requires_grad=True)
        loss = nn.CrossEntropyLoss()(logits, np.array([0, 1, 2, 0]))
        assert loss.size == 1
        mse = nn.MSELoss()(Tensor(np.ones(3, dtype=np.float32)), Tensor(np.zeros(3, dtype=np.float32)))
        assert mse.item() == pytest.approx(1.0)

    def test_pooling_layers(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 4, 4)).astype(np.float32))
        assert nn.MaxPool2d(2)(x).shape == (1, 2, 2, 2)
        assert nn.AvgPool2d(2)(x).shape == (1, 2, 2, 2)
        assert nn.GlobalAvgPool2d()(x).shape == (1, 2)
