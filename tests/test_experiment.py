"""Tests for the experiment runner and result containers."""

import numpy as np
import pytest

from repro.core import ExperimentConfig, ExperimentResult, run_experiment
from repro.core.experiment import run_algorithm_sweep
from repro.utils.serialization import save_json


def quick_config(**overrides) -> ExperimentConfig:
    base = dict(model="fnn3", preset="tiny", algorithm="a2sgd", world_size=2, epochs=2,
                max_iterations_per_epoch=5, batch_size=16, num_train=128, num_test=32, seed=0)
    base.update(overrides)
    return ExperimentConfig(**base)


class TestRunExperiment:
    def test_returns_complete_result(self):
        result = run_experiment(quick_config())
        assert isinstance(result, ExperimentResult)
        assert result.num_parameters > 0
        assert result.wire_bits_per_iteration == 64.0
        assert result.wall_time_s > 0
        assert len(result.metrics.epochs) == 2
        assert result.metric_name == "top1"

    def test_timeline_iterations_match_config(self):
        result = run_experiment(quick_config(epochs=2, max_iterations_per_epoch=4))
        assert result.timeline.iterations == 8

    def test_result_serializable_to_json(self, tmp_path):
        result = run_experiment(quick_config(epochs=1, max_iterations_per_epoch=2))
        payload = result.as_dict()
        path = save_json(payload, tmp_path / "result.json")
        assert path.exists()
        assert "metrics" in payload and "timeline" in payload

    def test_final_metric_property(self):
        result = run_experiment(quick_config(epochs=1, max_iterations_per_epoch=2))
        assert result.final_metric == result.metrics.metric[-1]

    def test_trainer_config_translation(self):
        config = quick_config(algorithm="topk", compressor_kwargs={"ratio": 0.01})
        trainer_config = config.trainer_config()
        assert trainer_config.algorithm == "topk"
        assert trainer_config.compressor_kwargs == {"ratio": 0.01}
        assert trainer_config.batch_size == 16


class TestAlgorithmSweep:
    def test_sweep_covers_all_algorithms(self):
        results = run_algorithm_sweep(quick_config(epochs=1, max_iterations_per_epoch=3),
                                      ["dense", "a2sgd"])
        assert set(results) == {"dense", "a2sgd"}
        assert results["a2sgd"].config.algorithm == "a2sgd"
        assert results["dense"].wire_bits_per_iteration > results["a2sgd"].wire_bits_per_iteration

    def test_sweep_results_share_configuration(self):
        results = run_algorithm_sweep(quick_config(epochs=1, max_iterations_per_epoch=2),
                                      ["dense", "a2sgd"])
        assert results["dense"].config.world_size == results["a2sgd"].config.world_size == 2
