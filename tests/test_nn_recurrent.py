"""Tests for the LSTM cell and multi-layer LSTM."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor


class TestLSTMCell:
    def test_single_step_shapes(self, rng):
        cell = nn.LSTMCell(6, 8)
        h0, c0 = cell.initial_state(4)
        x = Tensor(rng.standard_normal((4, 6)).astype(np.float32))
        h1, c1 = cell(x, (h0, c0))
        assert h1.shape == (4, 8)
        assert c1.shape == (4, 8)

    def test_initial_state_is_zero(self):
        cell = nn.LSTMCell(3, 5)
        h, c = cell.initial_state(2)
        assert np.all(h.data == 0) and np.all(c.data == 0)

    def test_hidden_state_bounded_by_tanh(self, rng):
        cell = nn.LSTMCell(4, 4)
        state = cell.initial_state(2)
        for _ in range(5):
            x = Tensor(rng.standard_normal((2, 4)).astype(np.float32) * 10)
            state = cell(x, state)
        assert np.all(np.abs(state[0].data) <= 1.0 + 1e-6)

    def test_parameter_count(self):
        cell = nn.LSTMCell(10, 20)
        expected = 4 * 20 * 10 + 4 * 20 * 20 + 4 * 20 + 4 * 20
        assert cell.num_parameters() == expected

    def test_gradients_flow_through_time(self, rng):
        cell = nn.LSTMCell(3, 3)
        state = cell.initial_state(1)
        x = Tensor(rng.standard_normal((1, 3)).astype(np.float32))
        for _ in range(4):
            state = cell(x, state)
        state[0].sum().backward()
        assert cell.weight_ih.grad is not None
        assert np.abs(cell.weight_hh.grad).sum() > 0


class TestLSTM:
    def test_sequence_output_shape(self, rng):
        lstm = nn.LSTM(5, 7, num_layers=2)
        x = Tensor(rng.standard_normal((6, 3, 5)).astype(np.float32))
        out, states = lstm(x)
        assert out.shape == (6, 3, 7)
        assert len(states) == 2
        assert states[0][0].shape == (3, 7)

    def test_state_carryover_changes_output(self, rng):
        lstm = nn.LSTM(4, 4)
        x = Tensor(rng.standard_normal((3, 2, 4)).astype(np.float32))
        out1, state = lstm(x)
        out2_fresh, _ = lstm(x)
        out2_carried, _ = lstm(x, state)
        np.testing.assert_allclose(out1.data, out2_fresh.data, rtol=1e-5)
        assert not np.allclose(out2_fresh.data, out2_carried.data)

    def test_wrong_state_length_raises(self, rng):
        lstm = nn.LSTM(4, 4, num_layers=2)
        x = Tensor(rng.standard_normal((2, 2, 4)).astype(np.float32))
        single_state = [lstm.cells[0].initial_state(2)]
        with pytest.raises(ValueError):
            lstm(x, single_state)

    def test_detach_state_stops_gradient(self, rng):
        lstm = nn.LSTM(3, 3)
        x = Tensor(rng.standard_normal((2, 1, 3)).astype(np.float32))
        _, state = lstm(x)
        detached = lstm.detach_state(state)
        assert all(not h.requires_grad and not c.requires_grad for h, c in detached)

    def test_backward_through_sequence(self, rng):
        lstm = nn.LSTM(3, 4)
        x = Tensor(rng.standard_normal((5, 2, 3)).astype(np.float32), requires_grad=True)
        out, _ = lstm(x)
        out.sum().backward()
        assert x.grad is not None and x.grad.shape == (5, 2, 3)
        assert all(p.grad is not None for p in lstm.parameters())
