"""Property: the virtual clock is deterministic.  The same ``clock_seed``
must reproduce the exact event timeline and bit-identical final parameters
across world sizes (satellite: clock-seed determinism)."""

import numpy as np
import pytest

from repro.core import DistributedTrainer, TrainerConfig
from repro.core.flatten import flatten_parameters


def run_once(world_size: int, clock_seed: int, strategy: str = "async_ps"):
    sync = {"strategy": strategy}
    if strategy == "easgd":
        sync["period"] = 2
    config = TrainerConfig(
        model="fnn3", preset="tiny", algorithm="dense", world_size=world_size,
        epochs=1, batch_size=4, max_iterations_per_epoch=3,
        num_train=128, num_test=32, seed=0, sync=sync,
        compute_model={"name": "lognormal", "sigma": 0.5},
        clock_seed=clock_seed)
    trainer = DistributedTrainer(config)
    trainer.train()
    params = np.stack([flatten_parameters(m) for m in trainer.replicas])
    return trainer.sim_report, params


class TestClockSeedDeterminism:
    @pytest.mark.parametrize("world_size", [2, 4, 8])
    def test_same_seed_reproduces_timeline_and_parameters(self, world_size):
        first_report, first_params = run_once(world_size, clock_seed=11)
        second_report, second_params = run_once(world_size, clock_seed=11)

        assert first_report.events == second_report.events
        assert first_report.events, "simulation recorded no events"
        assert first_report.simulated_time_s == second_report.simulated_time_s
        assert first_report.steps_per_rank == second_report.steps_per_rank
        assert first_report.busy_s_per_rank == second_report.busy_s_per_rank
        assert first_report.epoch_time_s == second_report.epoch_time_s
        assert first_report.staleness_histogram == second_report.staleness_histogram
        assert np.array_equal(first_params, second_params)

    def test_different_seeds_change_the_timeline(self):
        report_a, _ = run_once(4, clock_seed=0)
        report_b, _ = run_once(4, clock_seed=1)
        assert report_a.events != report_b.events

    def test_easgd_is_deterministic_too(self):
        first_report, first_params = run_once(4, clock_seed=5, strategy="easgd")
        second_report, second_params = run_once(4, clock_seed=5, strategy="easgd")
        assert first_report.events == second_report.events
        assert np.array_equal(first_params, second_params)

    @pytest.mark.parametrize("world_size", [2, 4, 8])
    def test_event_budget_matches_epoch_semantics(self, world_size):
        """One epoch pops exactly world_size x iterations_per_epoch events."""
        report, _ = run_once(world_size, clock_seed=3)
        assert report.total_steps == world_size * 3
        assert len(report.events) == report.total_steps
        # Event times are the clock's pop order: non-decreasing.
        times = [when for when, _ in report.events]
        assert times == sorted(times)
