"""Figure 2 — compression computation time vs number of parameters.

The paper measures the time each algorithm needs to process a gradient of
growing size (up to 100 M parameters) and finds A2SGD ≈ Gaussian-K ≪ Top-K ≪
QSGD.  This benchmark measures the same quantity for this repository's
kernels across a sweep of sizes and reports the series.  (The absolute times
differ from the paper's GPU/CPU mix — see DESIGN.md — but QSGD's dominance
and the closeness of A2SGD and Gaussian-K are preserved.)
"""

import numpy as np
import pytest

from repro.analysis.reporting import format_figure_series
from repro.compress import get_compressor
from repro.utils.timer import median_time

ALGORITHMS = ("topk", "qsgd", "gaussiank", "a2sgd")
#: Parameter counts for the sweep (kept below the paper's 100 M so the
#: benchmark completes in seconds; the scaling trend is what matters).
SWEEP_SIZES = (100_000, 400_000, 1_600_000, 6_400_000)


def measure_series(sizes=SWEEP_SIZES, repeats: int = 3) -> dict:
    rng = np.random.default_rng(0)
    series = {name: [] for name in ALGORITHMS}
    for n in sizes:
        gradient = (rng.standard_normal(n) * 0.01).astype(np.float32)
        for name in ALGORITHMS:
            compressor = get_compressor(name)
            seconds = median_time(lambda c=compressor: c.compress(gradient), repeats=repeats)
            series[name].append(seconds)
    return series


def test_figure2_computation_time_sweep(benchmark, emit):
    """Regenerate Figure 2's series: compression seconds vs model size."""
    series = benchmark.pedantic(measure_series, rounds=1, iterations=1)
    text = format_figure_series(
        {name: [f"{v:.4f}" for v in values] for name, values in series.items()},
        [f"{n / 1e6:.1f}M" for n in SWEEP_SIZES],
        x_label="# parameters",
        title="Figure 2 — compression computation time (seconds) vs model size")
    emit("fig2_computation_time", text)

    # Shape assertions from the paper: QSGD is by far the most expensive and
    # A2SGD / Gaussian-K stay within a small factor of each other.
    largest = {name: values[-1] for name, values in series.items()}
    assert largest["qsgd"] == max(largest.values())
    assert largest["a2sgd"] < largest["qsgd"] / 2
    ratio = largest["a2sgd"] / largest["gaussiank"]
    assert 0.1 < ratio < 10.0


@pytest.mark.parametrize("algorithm", ALGORITHMS + ("dense",))
def test_compression_kernel(benchmark, algorithm):
    """Micro-benchmark of each compressor on a fixed 1M-parameter gradient."""
    gradient = (np.random.default_rng(0).standard_normal(1_000_000) * 0.01).astype(np.float32)
    compressor = get_compressor(algorithm)
    payload, ctx = benchmark(compressor.compress, gradient)
    assert payload.ndim == 1
