"""Ablation — two sign-split means vs a single unified mean.

§3 motivates splitting the gradient by sign before averaging ("to avoid over
simplification caused by a unified mean").  This ablation compares the paper's
two-mean encoding against a single signed mean on (a) encoding fidelity over a
stream of realistic gradients and (b) convergence of the distributed quadratic
problem.
"""

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.compress import A2SGDCompressor
from repro.core.algorithm1 import QuadraticProblem, a2sgd_quadratic_descent


def encoding_fidelity(two_means: bool, trials: int = 20, n: int = 50_000) -> float:
    """Mean relative error of enc(g) vs g over a stream of bell-shaped gradients."""
    rng = np.random.default_rng(0)
    compressor = A2SGDCompressor(two_means=two_means, error_feedback=False)
    errors = []
    for _ in range(trials):
        gradient = (rng.standard_normal(n) * 0.01 + rng.normal(0, 0.002)).astype(np.float32)
        payload, ctx = compressor.compress(gradient)
        encoded = compressor.decompress(payload, ctx)
        errors.append(np.linalg.norm(encoded - gradient) / np.linalg.norm(gradient))
    return float(np.mean(errors))


def run_ablation():
    problem = QuadraticProblem(dimension=30, rows_per_worker=150, world_size=4, seed=0)
    two = a2sgd_quadratic_descent(problem, iterations=300, base_lr=0.05, two_means=True)
    one = a2sgd_quadratic_descent(problem, iterations=300, base_lr=0.05, two_means=False)
    return {
        "fidelity_two": encoding_fidelity(True),
        "fidelity_one": encoding_fidelity(False),
        "distance_two": two.final_distance,
        "distance_one": one.final_distance,
    }


def test_ablation_single_mean(benchmark, emit):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    text = format_table(
        ["variant", "encoding error (no EF)", "final ||w - w*|| (quadratic)"],
        [["two means (paper)", f"{results['fidelity_two']:.3f}", f"{results['distance_two']:.4f}"],
         ["single mean (ablation)", f"{results['fidelity_one']:.3f}",
          f"{results['distance_one']:.4f}"]],
        title="Ablation — two sign-split means vs one unified mean")
    emit("ablation_single_mean", text)

    # The two-mean encoding is a strictly better approximation of the gradient.
    assert results["fidelity_two"] < results["fidelity_one"]
    # And it should not converge worse than the single-mean variant.
    assert results["distance_two"] <= results["distance_one"] * 1.5
