"""Ablation — A2SGD with and without the retained local error vector.

§3 of the paper argues that keeping the per-worker error ε_t = g_t − enc(g_t)
preserves the gradient variance and hence the convergence behaviour of dense
SGD.  This ablation removes the error term (workers apply only the
reconstructed global means) and measures the damage on (a) the convex
quadratic problem with a known optimum and (b) the tiny FNN-3 training task.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.core import ExperimentConfig, run_experiment
from repro.core.algorithm1 import QuadraticProblem, a2sgd_quadratic_descent


def run_quadratic_ablation():
    problem = QuadraticProblem(dimension=30, rows_per_worker=150, world_size=4, seed=0)
    with_ef = a2sgd_quadratic_descent(problem, iterations=300, base_lr=0.05,
                                      error_feedback=True)
    without_ef = a2sgd_quadratic_descent(problem, iterations=300, base_lr=0.05,
                                         error_feedback=False)
    return with_ef, without_ef


def run_fnn_ablation():
    results = {}
    for error_feedback in (True, False):
        config = ExperimentConfig(model="fnn3", preset="tiny", algorithm="a2sgd",
                                  world_size=4, epochs=3, batch_size=16,
                                  max_iterations_per_epoch=12, num_train=384, num_test=96,
                                  seed=0,
                                  compressor_kwargs={"error_feedback": error_feedback})
        results[error_feedback] = run_experiment(config)
    return results


def test_ablation_error_feedback_quadratic(benchmark, emit):
    with_ef, without_ef = benchmark.pedantic(run_quadratic_ablation, rounds=1, iterations=1)
    text = format_table(
        ["variant", "final ||w - w*||"],
        [["A2SGD (with local errors, Algorithm 1)", f"{with_ef.final_distance:.4f}"],
         ["A2SGD without error feedback (ablation)", f"{without_ef.final_distance:.4f}"]],
        title="Ablation — error feedback on the distributed quadratic problem")
    emit("ablation_error_feedback_quadratic", text)
    assert with_ef.final_distance < without_ef.final_distance


def test_ablation_error_feedback_fnn3(benchmark, emit):
    results = benchmark.pedantic(run_fnn_ablation, rounds=1, iterations=1)
    text = format_table(
        ["variant", "final top-1 (%)"],
        [["A2SGD (with local errors)", f"{results[True].final_metric:.1f}"],
         ["A2SGD without error feedback", f"{results[False].final_metric:.1f}"]],
        title="Ablation — error feedback on tiny FNN-3 (4 workers, 3 epochs)")
    emit("ablation_error_feedback_fnn3", text)
    assert results[True].final_metric >= results[False].final_metric - 2.0
