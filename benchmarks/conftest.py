"""Shared fixtures for the benchmark harness.

Every benchmark module regenerates one table or figure from the paper's
evaluation.  The rendered text is printed (visible with ``pytest -s``) and
written to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference
the generated artefacts.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Allow "from tests.conftest import ..." style imports to fail gracefully and
# make the benchmarks runnable from the repository root.
REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where rendered tables/figures are written."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def emit(results_dir):
    """Callable that prints a rendered artefact and persists it to disk."""

    def _emit(name: str, text: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")
        return path

    return _emit


@pytest.fixture(scope="session")
def cost_model():
    """One analytic cost model shared by the Figure 4/5 and Table 2 benches."""
    from repro.core.cost_model import CostModel

    return CostModel()
