"""Table 1 — experimental setup (models, datasets, parameters, batch size, LR policy).

Regenerates the paper's Table 1 from the model registry, confirming that each
architecture as implemented in this repository has the parameter count the
paper reports.  The benchmarked kernel is model construction (the cost of
instantiating the paper's architectures from the registry).
"""

import pytest

from repro.analysis.reporting import format_table
from repro.models.registry import (
    MODEL_REGISTRY,
    PAPER_HYPERPARAMETERS,
    PAPER_PARAMETER_COUNTS,
    build_model,
    get_model_spec,
)

MODELS = ("fnn3", "vgg16", "resnet20", "lstm_ptb")
DATASET_LABELS = {"mnist": "MNIST (synthetic)", "cifar10": "CIFAR10 (synthetic)",
                  "ptb": "PTB (synthetic)"}


def render_table1() -> str:
    rows = []
    for name in MODELS:
        hp = PAPER_HYPERPARAMETERS[name]
        spec = get_model_spec(name, "paper")
        if name == "lstm_ptb":
            # Constructing the 66M-parameter LSTM allocates ~0.5 GB; use the
            # analytic count (verified against the layer shapes in tests).
            constructed = PAPER_PARAMETER_COUNTS[name]
        else:
            constructed = spec.build(seed=0).num_parameters()
        rows.append([
            name,
            DATASET_LABELS[str(hp["dataset"])],
            f"{PAPER_PARAMETER_COUNTS[name]:,}",
            f"{constructed:,}",
            hp["batch_size"],
            hp["base_lr"],
            hp["lr_policy"],
        ])
    return format_table(
        ["Model", "Dataset", "# Params (paper)", "# Params (this repo)", "Batch", "LR",
         "LR policy"],
        rows, title="Table 1 — Experimental setup")


def test_table1_setup(benchmark, emit):
    """Render Table 1; the benchmarked kernel is building the registry models."""
    text = benchmark.pedantic(render_table1, rounds=1, iterations=1)
    emit("table1_setup", text)
    assert "fnn3" in text and "lstm_ptb" in text


@pytest.mark.parametrize("model", ["fnn3", "resnet20", "vgg16", "lstm_ptb"])
def test_tiny_model_construction_speed(benchmark, model):
    """Construction cost of the tiny presets used throughout the test suite."""
    instance = benchmark(build_model, model, "tiny", 0)
    assert instance.num_parameters() > 0
