"""Figure 3 (and appendix Figures 6–8) — convergence accuracy per epoch.

The paper trains FNN-3, VGG-16, ResNet-20 and LSTM-PTB with 2/4/8/16 workers
under the five algorithms and plots top-1 accuracy (or perplexity) per epoch.
This benchmark reproduces the panels at CI scale: the tiny presets of the
same architectures on the synthetic datasets, with the worker counts the
paper uses for its main figure (8) and appendix (2 and 4; 16 is covered by
the scaling tests and can be enabled with ``FULL_SWEEP``).

The shape that must hold (and is asserted): every algorithm learns, and
A2SGD's final accuracy is the closest to dense SGD's among the compressed
algorithms — the paper's central convergence claim.
"""

import os

import pytest

from repro.analysis.reporting import render_convergence_figure
from repro.core import ExperimentConfig, run_experiment

ALGORITHMS = ("dense", "topk", "qsgd", "gaussiank", "a2sgd")
#: Worker counts exercised by default; set REPRO_FULL_SWEEP=1 to add 16.
WORKER_COUNTS = (2, 4, 8) + ((16,) if os.environ.get("REPRO_FULL_SWEEP") else ())


def run_panel(model: str, world_size: int, epochs: int = 3):
    """Train every algorithm on one (model, world size) panel."""
    results = {}
    for algorithm in ALGORITHMS:
        kwargs = {"ratio": 0.05} if algorithm in ("topk", "gaussiank") else {}
        config = ExperimentConfig(
            model=model, preset="tiny", algorithm=algorithm, world_size=world_size,
            epochs=epochs, batch_size=16, max_iterations_per_epoch=12,
            num_train=384, num_test=96, seed=0, compressor_kwargs=kwargs,
            base_lr=5.0 if model == "lstm_ptb" else None,
            seq_len=10,
        )
        results[algorithm] = run_experiment(config)
    return results


def render_panel(results, model: str, world_size: int) -> str:
    metric_name = results["dense"].metric_name
    series = {name: [round(v, 2) for v in result.metrics.metric]
              for name, result in results.items()}
    epochs = results["dense"].metrics.epochs
    return render_convergence_figure(series, epochs, metric_name, model, world_size)


@pytest.mark.parametrize("world_size", WORKER_COUNTS)
def test_figure3_fnn3_convergence(benchmark, emit, world_size):
    """FNN-3 panels of Figure 3 (8 workers) and Figures 6–7 (2 and 4 workers)."""
    results = benchmark.pedantic(run_panel, args=("fnn3", world_size), rounds=1, iterations=1)
    emit(f"fig3_fnn3_{world_size}workers", render_panel(results, "fnn3", world_size))

    final = {name: result.final_metric for name, result in results.items()}
    assert all(v > 15.0 for v in final.values()), final
    # A2SGD is the compressed algorithm closest to dense (allow a small slack
    # because single-seed CI runs are noisy).
    gaps = {name: abs(final["dense"] - v) for name, v in final.items() if name != "dense"}
    assert gaps["a2sgd"] <= min(gaps.values()) + 10.0, gaps


def test_figure3_resnet20_convergence(benchmark, emit):
    """ResNet-20 panel of Figure 3 at the paper's headline worker count (8)."""
    results = benchmark.pedantic(run_panel, args=("resnet20", 4), rounds=1, iterations=1)
    emit("fig3_resnet20_4workers", render_panel(results, "resnet20", 4))
    final = {name: result.final_metric for name, result in results.items()}
    assert final["a2sgd"] > 15.0
    assert final["dense"] > 15.0


def test_figure3_lstm_convergence(benchmark, emit):
    """LSTM-PTB panel of Figure 3(d): perplexity decreases for dense and A2SGD."""

    def run():
        out = {}
        for algorithm in ("dense", "a2sgd"):
            config = ExperimentConfig(model="lstm_ptb", preset="tiny", algorithm=algorithm,
                                      world_size=2, epochs=3, seq_len=10, base_lr=5.0,
                                      max_iterations_per_epoch=20, num_train=8000,
                                      num_test=1600, seed=0)
            out[algorithm] = run_experiment(config)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("fig3_lstm_2workers", render_panel(results, "lstm_ptb", 2))
    for name, result in results.items():
        assert result.metrics.metric[-1] < result.metrics.metric[0], name
