"""Table 2, column 4 — scaling efficiency at 8 workers.

The paper defines scaling efficiency as each algorithm's throughput at 8
workers normalized by dense SGD's throughput at 2 workers.  This benchmark
regenerates the column from the analytic cost model (paper-size models on the
100 Gbps fabric) and asserts the orderings the paper reports: A2SGD and
Gaussian-K scale best, QSGD worst (catastrophically so for VGG-16 and
LSTM-PTB), with dense SGD and Top-K in between.
"""

import pytest

from repro.analysis.reporting import render_table2
from repro.analysis.scaling import scaling_efficiency_table
from repro.compress import get_compressor
from repro.models.registry import PAPER_PARAMETER_COUNTS

MODELS = ("fnn3", "vgg16", "resnet20", "lstm_ptb")
ALGORITHMS = ("dense", "qsgd", "topk", "gaussiank", "a2sgd")

#: The paper's reported scaling efficiencies (Table 2, last column) for
#: reference in the emitted artefact.
PAPER_SCALING = {
    "dense": (1.83, 2.34, 2.52, 2.34),
    "qsgd": (1.73, 0.66, 2.34, 0.26),
    "topk": (1.76, 2.40, 1.92, 1.50),
    "gaussiank": (1.79, 2.97, 2.40, 6.58),
    "a2sgd": (1.80, 3.06, 2.50, 6.37),
}


def render(cost_model) -> tuple[str, dict]:
    scaling = scaling_efficiency_table(cost_model, models=MODELS, algorithms=ALGORITHMS,
                                       world_size=8)
    complexities = {name: get_compressor(name).computation_complexity(
        PAPER_PARAMETER_COUNTS["lstm_ptb"]) for name in ALGORITHMS}
    traffic = {"dense": "32n", "qsgd": "2.8n+32", "topk": "32k", "gaussiank": "32k",
               "a2sgd": "64"}
    table = render_table2(complexities, traffic, scaling, models=MODELS)
    reference_lines = ["", "Paper-reported scaling efficiencies for comparison:"]
    for name, values in PAPER_SCALING.items():
        reference_lines.append(f"  {name:10s} " + " / ".join(f"{v:.2f}" for v in values))
    return table + "\n" + "\n".join(reference_lines), scaling


def test_table2_scaling_efficiency(benchmark, emit, cost_model):
    text, scaling = benchmark.pedantic(render, args=(cost_model,), rounds=1, iterations=1)
    emit("table2_scaling", text)

    # Orderings the paper reports for the two large models.
    for model in ("vgg16", "lstm_ptb"):
        per_model = {name: scaling[name][model] for name in ALGORITHMS}
        assert per_model["qsgd"] == min(per_model.values())
        assert per_model["a2sgd"] > per_model["dense"]
        assert per_model["gaussiank"] > per_model["dense"]
        assert per_model["a2sgd"] == pytest.approx(per_model["gaussiank"], rel=0.25)

    # For the small models all algorithms except QSGD are within ~10 % of
    # each other (the paper's "immaterial difference" observation).
    for model in ("fnn3", "resnet20"):
        values = [scaling[name][model] for name in ("dense", "topk", "gaussiank", "a2sgd")]
        assert max(values) / min(values) < 1.4


def test_throughput_kernel(benchmark, cost_model):
    """Benchmark the cost-model evaluation itself (used by sweep scripts)."""
    value = benchmark(cost_model.scaling_efficiency, "lstm_ptb", "a2sgd", 8)
    assert value > 0
