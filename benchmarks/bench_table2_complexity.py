"""Table 2, columns 2–3 — computation complexity and communication traffic.

Regenerates the analytic part of Table 2 for every algorithm and checks the
headline numbers: 32n bits for dense SGD, 32k for the sparsifiers, 2.8n + 32
for QSGD and 64 bits — independent of n — for A2SGD.  The benchmarked kernel
is a full compress + reconstruct round-trip at 1 M parameters, i.e. the
computation whose asymptotic order the table reports.
"""

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.compress import get_compressor
from repro.compress.base import ExchangeKind
from repro.models.registry import PAPER_PARAMETER_COUNTS

ALGORITHMS = ("dense", "qsgd", "topk", "gaussiank", "a2sgd")


def traffic_expression(name: str) -> str:
    return {
        "dense": "32n",
        "qsgd": "2.8n + 32",
        "topk": "32k",
        "gaussiank": "32k",
        "a2sgd": "64",
    }[name]


def render_table2_analytic() -> str:
    n = PAPER_PARAMETER_COUNTS["lstm_ptb"]
    rows = []
    for name in ALGORITHMS:
        compressor = get_compressor(name)
        rows.append([
            name,
            compressor.computation_complexity(n),
            traffic_expression(name),
            f"{compressor.wire_bits(n):,.0f}",
            compressor.exchange.value,
        ])
    return format_table(
        ["Algorithm", "Computation", "Communication (bits)", "Bits @ n=66,034,000",
         "Exchange"],
        rows, title="Table 2 (columns 2-3) — gradient synchronization complexities")


def test_table2_complexity_columns(benchmark, emit):
    text = benchmark.pedantic(render_table2_analytic, rounds=1, iterations=1)
    emit("table2_complexity", text)

    n = PAPER_PARAMETER_COUNTS["lstm_ptb"]
    k = max(1, round(0.001 * n))
    assert get_compressor("dense").wire_bits(n) == 32 * n
    assert get_compressor("topk").wire_bits(n) == 32 * k
    assert get_compressor("gaussiank").wire_bits(n) == 32 * k
    assert get_compressor("qsgd").wire_bits(n) == pytest.approx(2.8 * n + 32)
    assert get_compressor("a2sgd").wire_bits(n) == 64


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_compress_reconstruct_roundtrip(benchmark, algorithm):
    """Benchmark the full per-iteration gradient processing of each algorithm."""
    gradient = (np.random.default_rng(0).standard_normal(1_000_000) * 0.01).astype(np.float32)
    compressor = get_compressor(algorithm)

    def roundtrip():
        payload, ctx = compressor.compress(gradient)
        if compressor.exchange is ExchangeKind.ALLREDUCE:
            return compressor.decompress(payload, ctx)
        return compressor.decompress_gathered([payload], ctx)

    result = benchmark(roundtrip)
    assert result.shape == gradient.shape
