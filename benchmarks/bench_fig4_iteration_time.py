"""Figure 4 — average iteration time vs number of workers.

The paper plots per-iteration time for 2/4/8/16 workers, four models and five
algorithms on its V100 + 100 Gbps testbed.  This benchmark regenerates the
four panels from the cost model (compute + compression + collective time with
the paper's parameter counts) and additionally cross-checks one point per
panel against the *simulated trainer* (tiny models, real collectives) to make
sure the two accounting paths agree on who communicates how much.

Shape assertions (the paper's observations in §4.4):
* FNN-3 / ResNet-20: all algorithms within a small factor of dense SGD;
* VGG-16 / LSTM-PTB: A2SGD and Gaussian-K clearly faster than Dense, Top-K
  and QSGD, with QSGD slowest;
* every algorithm's collective time grows with the worker count.
"""

import pytest

from repro.analysis.reporting import render_iteration_time_figure
from repro.core import ExperimentConfig, run_experiment

MODELS = ("fnn3", "vgg16", "resnet20", "lstm_ptb")
ALGORITHMS = ("dense", "topk", "qsgd", "gaussiank", "a2sgd")
WORKER_COUNTS = (2, 4, 8, 16)


def build_panel(cost_model, model: str) -> dict:
    return {algorithm: [cost_model.iteration_time(model, algorithm, p) for p in WORKER_COUNTS]
            for algorithm in ALGORITHMS}


@pytest.mark.parametrize("model", MODELS)
def test_figure4_iteration_time(benchmark, emit, cost_model, model):
    panel = benchmark.pedantic(build_panel, args=(cost_model, model), rounds=1, iterations=1)
    text = render_iteration_time_figure(
        {name: [round(v * 1e3, 3) for v in values] for name, values in panel.items()},
        WORKER_COUNTS, model, figure_name="Figure 4 (milliseconds per iteration)")
    emit(f"fig4_iteration_time_{model}", text)

    at8 = {name: values[WORKER_COUNTS.index(8)] for name, values in panel.items()}
    if model in ("vgg16", "lstm_ptb"):
        assert at8["a2sgd"] < at8["dense"]
        assert at8["gaussiank"] < at8["dense"]
        assert at8["qsgd"] == max(at8.values())
    else:
        assert at8["a2sgd"] <= 1.25 * at8["dense"]
        assert at8["gaussiank"] <= 1.25 * at8["dense"]

    # Communication grows with the worker count for the dense exchange.
    dense_comm = [cost_model.communication_time("dense", model, p) for p in WORKER_COUNTS]
    assert all(a < b for a, b in zip(dense_comm, dense_comm[1:]))


def test_figure4_trainer_cross_check(benchmark, emit):
    """One measured point: the simulated trainer's comm accounting at 4 workers.

    The tiny models' absolute times are host-dependent, but the *relative*
    simulated communication time must match the cost model's story: dense ≫
    a2sgd, with topk in between.
    """

    def run():
        times = {}
        for algorithm in ("dense", "topk", "a2sgd"):
            config = ExperimentConfig(model="fnn3", preset="tiny", algorithm=algorithm,
                                      world_size=4, epochs=1, batch_size=16,
                                      max_iterations_per_epoch=8, num_train=256,
                                      num_test=64, seed=0)
            result = run_experiment(config)
            times[algorithm] = result.timeline.communication_s / result.timeline.iterations
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Simulated per-iteration collective time, tiny FNN-3, 4 workers:"]
    for name, value in times.items():
        lines.append(f"  {name:8s} {value * 1e6:10.2f} us")
    emit("fig4_trainer_cross_check", "\n".join(lines))

    assert times["a2sgd"] < times["topk"] < times["dense"]
