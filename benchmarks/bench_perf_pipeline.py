"""Zero-copy fused gradient pipeline vs the seed's per-rank loops.

Times complete training iterations (batching, forward/backward, compression,
collective, reconstruction, optimizer step) on Figure-4-style workloads
(tiny presets, 8 workers, A2SGD and friends) with both pipeline
implementations and writes the result to ``BENCH_pipeline.json`` at the
repository root so subsequent PRs accumulate a perf trajectory.  The
fnn3 run exercises the hand-derived MLP executor; lstm_ptb and resnet20
exercise the stacked-graph batched executors for recurrent and conv models.

Marked ``bench``: excluded from the tier-1 suite (``pytest.ini`` limits
default collection to ``tests/``); run it explicitly with

    PYTHONPATH=src python -m pytest benchmarks/bench_perf_pipeline.py -s -m bench

or without pytest via ``python -m repro bench-pipeline``.
"""

from pathlib import Path

import pytest

from repro.analysis.perf_pipeline import (
    format_benchmark,
    run_pipeline_benchmark,
    write_benchmark_json,
)

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"


@pytest.mark.bench
def test_pipeline_speedup(emit):
    result = run_pipeline_benchmark(model="fnn3", algorithm="a2sgd",
                                    world_size=8, iterations=60, repeats=3)
    emit("perf_pipeline", format_benchmark(result))
    write_benchmark_json(result, BENCH_JSON)

    # Acceptance: the fused pipeline is at least twice as fast end-to-end on
    # the fig4-style workload.
    assert result["speedup"] >= 2.0, format_benchmark(result)


@pytest.mark.bench
@pytest.mark.parametrize("algorithm", ["dense", "topk", "qsgd"])
def test_pipeline_speedup_other_algorithms(emit, algorithm):
    """The fused path must never be slower, whatever the compressor."""
    result = run_pipeline_benchmark(model="fnn3", algorithm=algorithm,
                                    world_size=8, iterations=40, repeats=2)
    emit(f"perf_pipeline_{algorithm}", format_benchmark(result))
    write_benchmark_json(result, BENCH_JSON)
    assert result["speedup"] >= 1.0, format_benchmark(result)


@pytest.mark.bench
def test_pipeline_speedup_lstm(emit):
    """The batched BPTT executor must beat the per-replica loop end to end.

    Stage regressions (e.g. ``exchange_ms`` < 1.0x) are no longer silently
    recorded: ``run_pipeline_benchmark`` stores them under
    ``stage_regressions``, warns, and ``format_benchmark`` marks the row.
    """
    result = run_pipeline_benchmark(model="lstm_ptb", algorithm="a2sgd",
                                    world_size=8, iterations=20, repeats=2)
    emit("perf_pipeline_lstm", format_benchmark(result))
    write_benchmark_json(result, BENCH_JSON)
    assert result["speedup"] >= 1.5, format_benchmark(result)


@pytest.mark.bench
def test_pipeline_speedup_resnet(emit):
    """Conv stacks run through the stacked im2col executor on the fast path."""
    result = run_pipeline_benchmark(model="resnet20", algorithm="a2sgd",
                                    world_size=8, iterations=10, repeats=2)
    emit("perf_pipeline_resnet", format_benchmark(result))
    write_benchmark_json(result, BENCH_JSON)
    assert result["speedup"] >= 1.0, format_benchmark(result)
