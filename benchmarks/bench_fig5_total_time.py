"""Figure 5 — total training time vs number of workers.

Total time = iteration time × iterations/epoch × the paper's epoch budget
(30 / 150 / 150 / 100).  The paper's observations that must hold here:

* every algorithm gets faster with more workers (data parallelism wins);
* for VGG-16 and LSTM-PTB, A2SGD and Gaussian-K are the fastest overall and
  QSGD the slowest;
* the headline §1 ratios for LSTM-PTB point the right way: A2SGD beats dense
  SGD (paper: 1.72×), Top-K (3.2×) and QSGD (23.2×).
"""

import pytest

from repro.analysis.reporting import render_iteration_time_figure

MODELS = ("fnn3", "vgg16", "resnet20", "lstm_ptb")
ALGORITHMS = ("dense", "topk", "qsgd", "gaussiank", "a2sgd")
WORKER_COUNTS = (2, 4, 8, 16)


def build_panel(cost_model, model: str) -> dict:
    return {algorithm: [cost_model.total_training_time(model, algorithm, p)
                        for p in WORKER_COUNTS]
            for algorithm in ALGORITHMS}


@pytest.mark.parametrize("model", MODELS)
def test_figure5_total_time(benchmark, emit, cost_model, model):
    panel = benchmark.pedantic(build_panel, args=(cost_model, model), rounds=1, iterations=1)
    text = render_iteration_time_figure(
        {name: [round(v, 1) for v in values] for name, values in panel.items()},
        WORKER_COUNTS, model, figure_name="Figure 5 (total training seconds)")
    emit(f"fig5_total_time_{model}", text)

    # Data parallelism reduces total time for every algorithm.
    for name, values in panel.items():
        assert values[-1] < values[0], name

    at16 = {name: values[-1] for name, values in panel.items()}
    if model in ("vgg16", "lstm_ptb"):
        assert at16["a2sgd"] < at16["dense"]
        assert at16["qsgd"] == max(at16.values())


def test_figure5_headline_ratios(benchmark, emit, cost_model):
    """The §1 headline: A2SGD's total-time advantage on LSTM-PTB."""

    def ratios():
        a2sgd = cost_model.total_training_time("lstm_ptb", "a2sgd", 16)
        return {
            "dense / a2sgd (paper: 1.72x)": cost_model.total_training_time(
                "lstm_ptb", "dense", 16) / a2sgd,
            "topk / a2sgd (paper: 3.2x)": cost_model.total_training_time(
                "lstm_ptb", "topk", 16) / a2sgd,
            "qsgd / a2sgd (paper: 23.2x)": cost_model.total_training_time(
                "lstm_ptb", "qsgd", 16) / a2sgd,
        }

    values = benchmark.pedantic(ratios, rounds=1, iterations=1)
    lines = ["LSTM-PTB total-training-time ratios at 16 workers:"]
    lines += [f"  {label:30s} {value:6.2f}x" for label, value in values.items()]
    emit("fig5_headline_ratios", "\n".join(lines))

    assert values["dense / a2sgd (paper: 1.72x)"] > 1.3
    assert values["topk / a2sgd (paper: 3.2x)"] > 2.0
    assert values["qsgd / a2sgd (paper: 23.2x)"] > 10.0
