"""Figure 1 — progression of the gradient distribution during training.

The paper plots the histogram of one worker's gradient values for FNN-3 and
ResNet-20 at increasing iteration counts, observing a bell shape around zero
that concentrates as training progresses.  This benchmark trains the tiny
presets of the same two architectures, snapshots the gradient histogram at
several iterations, and reports the summary statistics (standard deviation,
near-zero mass, the two A2SGD means) whose progression reproduces the
figure's message.
"""

import numpy as np
import pytest

from repro.analysis.gradient_stats import GradientDistributionTracker
from repro.analysis.reporting import format_table
from repro.core.flatten import flatten_gradients
from repro.data import DataLoader, get_dataset
from repro.models import build_model
from repro.optim import SGD
from repro.tensor import Tensor, functional as F

SNAPSHOTS = (0, 20, 60)


def train_and_track(model_name: str, dataset_name: str, iterations: int = 61,
                    lr: float = 0.05) -> GradientDistributionTracker:
    model = build_model(model_name, "tiny", seed=0)
    train, _ = get_dataset(dataset_name, num_train=512, num_test=64)
    loader = DataLoader(train, batch_size=32, rng=np.random.default_rng(0))
    optimizer = SGD(model.parameters(), lr=lr, momentum=0.9)
    tracker = GradientDistributionTracker(snapshot_iterations=SNAPSHOTS)

    done = 0
    while done < iterations:
        for inputs, targets in loader:
            model.zero_grad()
            loss = F.cross_entropy(model(Tensor(inputs)), targets)
            loss.backward()
            tracker.observe(flatten_gradients(model))
            optimizer.step()
            done += 1
            if done >= iterations:
                break
    return tracker


def render_figure1(trackers: dict) -> str:
    rows = []
    for model_name, tracker in trackers.items():
        for iteration, snap in sorted(tracker.snapshots.items()):
            rows.append([
                model_name,
                iteration,
                f"{snap['std']:.5f}",
                f"{snap['near_zero_fraction']:.3f}",
                f"{snap['positive_fraction']:.3f}",
                f"{snap['mu_plus']:.5f}",
                f"{snap['mu_minus']:.5f}",
            ])
    return format_table(
        ["Model", "Iteration", "Gradient std", "Near-zero mass", "Positive fraction",
         "mu+", "mu-"],
        rows,
        title="Figure 1 — gradient distribution progression "
              "(std shrinks and near-zero mass grows as training proceeds)")


def test_figure1_gradient_distribution(benchmark, emit):
    """Train FNN-3 and ResNet-20 (tiny) and regenerate Figure 1's statistics."""

    def run():
        return {
            "fnn3": train_and_track("fnn3", "mnist_tiny"),
            "resnet20": train_and_track("resnet20", "cifar10_tiny", lr=0.1),
        }

    trackers = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_figure1(trackers)
    emit("fig1_gradient_distribution", text)

    # The figure's qualitative claims must hold for both models.
    for name, tracker in trackers.items():
        stds = [s for _, s in tracker.concentration_progression()]
        assert stds[-1] < stds[0], f"{name}: gradient distribution did not concentrate"


def test_gradient_histogram_kernel(benchmark):
    """Micro-benchmark: cost of one histogram snapshot on a 1M gradient."""
    from repro.analysis.gradient_stats import gradient_histogram

    gradient = np.random.default_rng(0).standard_normal(1_000_000) * 0.01
    result = benchmark(gradient_histogram, gradient)
    assert result["counts"].sum() > 0
