"""Ablation — Allreduce vs Allgather exchange for A2SGD's two means.

§4.4 observes that Gaussian-K's Allgather-based exchange is slightly faster
than A2SGD's Allreduce on the 100 Gbps fabric and lists an Allgather-based
A2SGD as future work.  This ablation prices both exchange strategies for the
two-scalar payload with the α–β model across worker counts, and also verifies
numerically that an Allgather exchange (each worker averaging the gathered
mean pairs itself) produces exactly the same reconstructed gradients.
"""

import numpy as np
import pytest

from repro.analysis.reporting import format_figure_series
from repro.comm import CollectiveTimeModel, InProcessWorld, infiniband_100gbps
from repro.compress import A2SGDCompressor

WORKER_COUNTS = (2, 4, 8, 16, 32, 64)
PAYLOAD_BYTES = 8.0  # two float32 means


def price_exchanges() -> dict:
    model = CollectiveTimeModel(infiniband_100gbps())
    return {
        "allreduce (paper)": [model.allreduce(PAYLOAD_BYTES, p) for p in WORKER_COUNTS],
        "allgather (future work)": [model.allgather(PAYLOAD_BYTES, p) for p in WORKER_COUNTS],
    }


def test_ablation_allgather_pricing(benchmark, emit):
    series = benchmark.pedantic(price_exchanges, rounds=1, iterations=1)
    text = format_figure_series(
        {name: [round(v * 1e6, 3) for v in values] for name, values in series.items()},
        WORKER_COUNTS, x_label="workers",
        title="Ablation — A2SGD exchange strategy, microseconds per synchronization")
    emit("ablation_allgather_pricing", text)

    # Both are latency-bound microsecond-scale operations for an 8-byte
    # payload; the latency-optimal allreduce scales as log2(P) while the ring
    # allgather scales linearly, so allreduce wins at large worker counts.
    assert series["allreduce (paper)"][-1] < series["allgather (future work)"][-1]
    assert max(series["allgather (future work)"]) < 1e-3


def test_ablation_allgather_equivalence(benchmark):
    """Averaging gathered mean pairs equals the Allreduce-mean result."""

    def run():
        rng = np.random.default_rng(0)
        world = InProcessWorld(4)
        gradients = [(rng.standard_normal(5000) * 0.01).astype(np.float32) for _ in range(4)]
        compressors = [A2SGDCompressor() for _ in range(4)]
        payloads, contexts = zip(*(c.compress(g) for c, g in zip(compressors, gradients)))

        allreduced = world.allreduce(list(payloads))
        gathered = world.allgather(list(payloads))
        reconstructed_allreduce = [c.decompress(allreduced[r], contexts[r])
                                   for r, c in enumerate(compressors)]
        reconstructed_allgather = [c.decompress(np.mean(np.stack(gathered[r]), axis=0),
                                                contexts[r])
                                   for r, c in enumerate(compressors)]
        return reconstructed_allreduce, reconstructed_allgather

    allreduce_result, allgather_result = benchmark.pedantic(run, rounds=1, iterations=1)
    for a, b in zip(allreduce_result, allgather_result):
        np.testing.assert_allclose(a, b, atol=1e-6)
